//===- interp/InterpreterStats.cpp - Telemetry dispatch loop ---------------===//
///
/// The HasStats=true specializations of Interpreter::runImpl<> and the
/// once-per-run registry flush they call. Kept out of Interpreter.cpp
/// on purpose: the clean fast path's code generation must not change
/// when telemetry is compiled in (see interp/InterpreterLoop.inc).
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "obs/Obs.h"

#include <string>

using namespace ppp;

namespace ppp {
namespace interp_detail {

/// Flushes one telemetry-enabled run's locally accumulated statistics
/// into the obs registry. Handles are resolved once and cached; the
/// dispatch loop itself only touches stack locals.
void flushInterpStats(const uint64_t (&OpCount)[NumOpcodes],
                      uint64_t DynInstrs, const PathProbeStats &PS) {
  struct Handles {
    obs::Counter *Runs;
    obs::Counter *Instrs;
    obs::Counter *Ops[NumOpcodes];
    obs::Counter *Increments;
    obs::Counter *Probes;
    obs::Counter *Collisions;
    obs::Counter *Lost;
    obs::Counter *Invalid;
    obs::Counter *Cold;
    Handles() {
      Runs = &obs::counter("interp.runs");
      Instrs = &obs::counter("interp.instrs");
      for (unsigned Op = 0; Op < NumOpcodes; ++Op)
        Ops[Op] = &obs::counter(std::string("interp.op.") +
                                opcodeName(static_cast<Opcode>(Op)));
      Increments = &obs::counter("interp.table.increments");
      Probes = &obs::counter("interp.table.probes");
      Collisions = &obs::counter("interp.table.collisions");
      Lost = &obs::counter("interp.table.lost");
      Invalid = &obs::counter("interp.table.invalid");
      Cold = &obs::counter("interp.table.cold_checked");
    }
  };
  static Handles H;
  H.Runs->inc();
  H.Instrs->inc(DynInstrs);
  for (unsigned Op = 0; Op < NumOpcodes; ++Op)
    if (OpCount[Op])
      H.Ops[Op]->inc(OpCount[Op]);
  if (PS.Increments)
    H.Increments->inc(PS.Increments);
  if (PS.Probes)
    H.Probes->inc(PS.Probes);
  if (PS.Collisions)
    H.Collisions->inc(PS.Collisions);
  if (PS.Lost)
    H.Lost->inc(PS.Lost);
  if (PS.Invalid)
    H.Invalid->inc(PS.Invalid);
  if (PS.Cold)
    H.Cold->inc(PS.Cold);
}

} // namespace interp_detail
} // namespace ppp

#include "interp/InterpreterLoop.inc"

template RunResult Interpreter::runImpl<false, false, true, false, false>();
template RunResult Interpreter::runImpl<false, true, true, false, false>();
template RunResult Interpreter::runImpl<true, false, true, false, false>();
template RunResult Interpreter::runImpl<true, true, true, false, false>();
