//===- interp/InterpreterTrace.cpp - Trace-recording dispatch loop ---------===//
///
/// The HasTrace=true specializations of Interpreter::runImpl<>: the
/// dispatch loop with branch-target packet recording compiled in
/// (CondBr appends a bit, Switch a varint, into the attached
/// trace::TraceRecorder's chunked buffers). Kept out of Interpreter.cpp
/// for the same measured reason as InterpreterStats.cpp: the clean fast
/// path's code generation must not change when recording support is
/// compiled in (see interp/InterpreterLoop.inc).
///
/// Recording runs on clean modules, so only the HasRuntime=false,
/// HasStats=false configurations exist; run() asserts the exclusivity.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "obs/Obs.h"

using namespace ppp;

#include "interp/InterpreterLoop.inc"

template RunResult Interpreter::runImpl<false, false, false, true, false>();
template RunResult Interpreter::runImpl<true, false, false, true, false>();
