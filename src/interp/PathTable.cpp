//===- interp/PathTable.cpp - Path frequency counters ----------------------===//

#include "interp/PathTable.h"

using namespace ppp;

PathTable PathTable::makeArray(uint64_t Size) {
  PathTable T;
  T.TableKind = Kind::Array;
  T.Counts.assign(Size, 0);
  return T;
}

PathTable PathTable::makeHash() {
  PathTable T;
  T.TableKind = Kind::Hash;
  T.Slots.assign(PathHashSlots, HashSlot());
  return T;
}

void PathTable::increment(int64_t Index) {
  switch (TableKind) {
  case Kind::None:
    ++Invalid;
    return;
  case Kind::Array:
    if (Index < 0 || static_cast<uint64_t>(Index) >= Counts.size()) {
      ++Invalid;
      return;
    }
    ++Counts[static_cast<size_t>(Index)];
    return;
  case Kind::Hash: {
    if (Index < 0) {
      ++Invalid;
      return;
    }
    uint64_t Key = static_cast<uint64_t>(Index);
    uint64_t H = fastRemainder<PathHashSlots>(Key);
    // Secondary hash must be nonzero and coprime with the (prime) table
    // size so the probe sequence visits distinct slots.
    uint64_t Step = 1 + fastRemainder<PathHashSlots - 2>(Key);
    for (unsigned Try = 0; Try < PathHashTries; ++Try) {
      HashSlot &S = Slots[H];
      if (S.Key == Index || S.Count == 0) {
        S.Key = Index;
        ++S.Count;
        return;
      }
      // H + Step < 2 * PathHashSlots, so one subtract replaces the `%`.
      H += Step;
      if (H >= PathHashSlots)
        H -= PathHashSlots;
    }
    ++Lost;
    return;
  }
  }
}

void PathTable::incrementStats(int64_t Index, PathProbeStats &S) {
  ++S.Increments;
  switch (TableKind) {
  case Kind::None:
    ++Invalid;
    ++S.Invalid;
    return;
  case Kind::Array:
    if (Index < 0 || static_cast<uint64_t>(Index) >= Counts.size()) {
      ++Invalid;
      ++S.Invalid;
      return;
    }
    ++S.Probes;
    ++Counts[static_cast<size_t>(Index)];
    return;
  case Kind::Hash: {
    if (Index < 0) {
      ++Invalid;
      ++S.Invalid;
      return;
    }
    uint64_t Key = static_cast<uint64_t>(Index);
    uint64_t H = fastRemainder<PathHashSlots>(Key);
    uint64_t Step = 1 + fastRemainder<PathHashSlots - 2>(Key);
    for (unsigned Try = 0; Try < PathHashTries; ++Try) {
      HashSlot &Slot = Slots[H];
      ++S.Probes;
      if (Slot.Key == Index || Slot.Count == 0) {
        Slot.Key = Index;
        ++Slot.Count;
        return;
      }
      ++S.Collisions;
      H += Step;
      if (H >= PathHashSlots)
        H -= PathHashSlots;
    }
    ++Lost;
    ++S.Lost;
    return;
  }
  }
}

void PathTable::add(int64_t Index, uint64_t N) {
  if (N == 0)
    return;
  switch (TableKind) {
  case Kind::None:
    Invalid += N;
    return;
  case Kind::Array:
    if (Index < 0 || static_cast<uint64_t>(Index) >= Counts.size()) {
      Invalid += N;
      return;
    }
    Counts[static_cast<size_t>(Index)] += N;
    return;
  case Kind::Hash: {
    if (Index < 0) {
      Invalid += N;
      return;
    }
    // Probe exactly like increment(): after the first of N increments
    // claims (or fails to claim) a slot, the remaining N-1 repeat its
    // outcome, so one probe plus a batched count is equivalent.
    uint64_t Key = static_cast<uint64_t>(Index);
    uint64_t H = fastRemainder<PathHashSlots>(Key);
    uint64_t Step = 1 + fastRemainder<PathHashSlots - 2>(Key);
    for (unsigned Try = 0; Try < PathHashTries; ++Try) {
      HashSlot &S = Slots[H];
      if (S.Key == Index || S.Count == 0) {
        S.Key = Index;
        S.Count += N;
        return;
      }
      H += Step;
      if (H >= PathHashSlots)
        H -= PathHashSlots;
    }
    Lost += N;
    return;
  }
  }
}

uint64_t PathTable::countFor(int64_t Index) const {
  switch (TableKind) {
  case Kind::None:
    return 0;
  case Kind::Array:
    if (Index < 0 || static_cast<uint64_t>(Index) >= Counts.size())
      return 0;
    return Counts[static_cast<size_t>(Index)];
  case Kind::Hash: {
    if (Index < 0)
      return 0;
    uint64_t Key = static_cast<uint64_t>(Index);
    uint64_t H = fastRemainder<PathHashSlots>(Key);
    uint64_t Step = 1 + fastRemainder<PathHashSlots - 2>(Key);
    for (unsigned Try = 0; Try < PathHashTries; ++Try) {
      const HashSlot &S = Slots[H];
      if (S.Key == Index)
        return S.Count;
      if (S.Count == 0)
        return 0;
      H += Step;
      if (H >= PathHashSlots)
        H -= PathHashSlots;
    }
    return 0;
  }
  }
  return 0;
}

