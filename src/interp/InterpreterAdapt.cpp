//===- interp/InterpreterAdapt.cpp - Adaptive dispatch loop ----------------===//
///
/// The HasAdapt=true specializations of Interpreter::runImpl<>: the
/// dispatch loop with the epoch hook compiled into the Call opcode
/// (every EpochPeriod calls, the attached EpochHook samples the live
/// PathTable counters and may install or revert code versions in the
/// VersionTable -- the adaptive controller's sampling point, DESIGN.md
/// §12). Kept out of Interpreter.cpp for the same measured reason as
/// InterpreterStats.cpp: the clean fast path's code generation must
/// not change when adaptive support is compiled in (see
/// interp/InterpreterLoop.inc).
///
/// The hook samples live counters, so only the HasRuntime=true,
/// HasStats=false, HasTrace=false configurations exist; run() asserts
/// the exclusivity.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "obs/Obs.h"

using namespace ppp;

#include "interp/InterpreterLoop.inc"

template RunResult Interpreter::runImpl<false, true, false, false, true>();
template RunResult Interpreter::runImpl<true, true, false, false, true>();
