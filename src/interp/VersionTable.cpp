//===- interp/VersionTable.cpp - Per-function code versions ----------------===//

#include "interp/VersionTable.h"

#include "interp/ProfileRuntime.h"
#include "obs/Obs.h"

using namespace ppp;

void VersionTable::bind(const Module &Mod, const CostModel &CM) {
  M = &Mod;
  Costs = CM;
  PricingRT = nullptr;
  Entries.assign(Mod.numFunctions(), Entry());
  NumDecoded = 0;
}

void VersionTable::decodeAll() {
  for (size_t F = 0; F < Entries.size(); ++F)
    if (!Entries[F].Base)
      decodeBase(static_cast<FuncId>(F));
}

bool VersionTable::hashedTable(FuncId F) const {
  return PricingRT &&
         PricingRT->table(F).kind() == PathTable::Kind::Hash;
}

const DecodedFunction *VersionTable::decodeBase(FuncId F) {
  static obs::Counter &DecodedFns = obs::counter("interp.decode.functions");
  static obs::Counter &DecodedInstrs = obs::counter("interp.decode.instrs");
  assert(M && "VersionTable not bound");
  Entry &E = Entries[static_cast<size_t>(F)];
  assert(!E.Base && "base version decoded twice");
  E.Base = std::make_shared<DecodedFunction>(
      decodeFunction(M->function(F), Costs, hashedTable(F)));
  E.Cur = E.Base.get();
  E.CurVersion = 0;
  ++NumDecoded;
  DecodedFns.inc();
  DecodedInstrs.inc(E.Base->Code.size());
  return E.Cur;
}

int VersionTable::install(FuncId F, std::shared_ptr<const DecodedFunction> V) {
  assert(V && "installing a null version");
  Entry &E = Entries[static_cast<size_t>(F)];
  E.Versions.push_back(std::move(V));
  E.Cur = E.Versions.back().get();
  E.CurVersion = static_cast<int>(E.Versions.size());
  return E.CurVersion;
}

void VersionTable::revert(FuncId F) {
  Entry &E = Entries[static_cast<size_t>(F)];
  if (!E.Base) {
    decodeBase(F);
    return;
  }
  E.Cur = E.Base.get();
  E.CurVersion = 0;
}

void VersionTable::setPricingRuntime(const ProfileRuntime *RT) {
  PricingRT = RT;
  for (size_t F = 0; F < Entries.size(); ++F) {
    Entry &E = Entries[F];
    if (!E.Base)
      continue;
    repriceProfilingCosts(*E.Base, Costs,
                          hashedTable(static_cast<FuncId>(F)));
  }
}
