//===- interp/Interpreter.cpp - IR interpreter -----------------------------===//
///
/// run() is a thin dispatcher over the specializations of runImpl<>,
/// selected by whether observers, a profiling runtime, an epoch hook,
/// and interpreter telemetry (obs::interpStatsEnabled()) are active.
/// The specializations must stay semantically identical: the
/// determinism tests in tests/fastpath_test.cpp and tests/obs_test.cpp
/// assert bit-equal RunResults across all of them for the benchmark
/// suite.
///
/// This TU compiles the dispatch loop (interp/InterpreterLoop.inc) for
/// the HasStats=false, HasTrace=false, HasAdapt=false configurations
/// only; the telemetry-enabled specializations live in
/// InterpreterStats.cpp, the trace-recording ones in
/// InterpreterTrace.cpp, and the adaptive ones in InterpreterAdapt.cpp,
/// so their presence cannot perturb the clean loop's code generation
/// (see the .inc header for why that separation is measured, not
/// cosmetic).
///
/// Dispatch is threaded (labels-as-values) under GCC/Clang: every
/// opcode body ends in its own indirect jump, so the branch predictor
/// learns per-opcode successor patterns instead of sharing one
/// hard-to-predict dispatch branch. Other compilers get a portable
/// switch loop with identical bodies (the PPP_OP/PPP_NEXT/PPP_JUMP
/// macros expand to labels or cases).
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "obs/Obs.h"
#include "trace/TraceRecorder.h" // Header-only; run() reads the timed flag.

#include <cassert>

using namespace ppp;

ExecObserver::~ExecObserver() = default;
EpochHook::~EpochHook() = default;

// Telemetry-enabled specializations, compiled in InterpreterStats.cpp.
extern template RunResult
Interpreter::runImpl<false, false, true, false, false>();
extern template RunResult
Interpreter::runImpl<false, true, true, false, false>();
extern template RunResult
Interpreter::runImpl<true, false, true, false, false>();
extern template RunResult
Interpreter::runImpl<true, true, true, false, false>();

// Trace-recording specializations, compiled in InterpreterTrace.cpp
// (same separate-TU discipline as telemetry: the clean loop's codegen
// must not see them).
extern template RunResult
Interpreter::runImpl<false, false, false, true, false>();
extern template RunResult
Interpreter::runImpl<true, false, false, true, false>();

// Timed trace-recording specializations (cost stamps at every Ret),
// compiled in InterpreterTraceTimed.cpp.
extern template RunResult
Interpreter::runImpl<false, false, false, true, false, true>();
extern template RunResult
Interpreter::runImpl<true, false, false, true, false, true>();

// Adaptive (epoch-hook) specializations, compiled in
// InterpreterAdapt.cpp.
extern template RunResult
Interpreter::runImpl<false, true, false, false, true>();
extern template RunResult
Interpreter::runImpl<true, true, false, false, true>();

Interpreter::Interpreter(const Module &Mod, const InterpOptions &Options)
    : Opts(Options) {
  MemWords = Mod.addrSpaceWords();
  AddrMask = MemWords - 1;
  MainId = Mod.MainId;
  VT.bind(Mod, Opts.Costs);
  if (Opts.EagerDecode)
    VT.decodeAll();
}

void Interpreter::setProfileRuntime(ProfileRuntime *RT) {
  Runtime = RT;
  VT.setPricingRuntime(RT);
}

void Interpreter::setEpochHook(EpochHook *H, uint64_t PeriodCalls) {
  assert((!H || PeriodCalls > 0) && "epoch period must be positive");
  Epoch = H;
  EpochPeriod = H ? PeriodCalls : 0;
}

RunResult Interpreter::run() {
  const bool HasObs = !Observers.empty();
  // Trace recording wins over the other dimensions: it runs on clean
  // modules (no runtime) and carries its own accounting (no stats).
  if (TraceRec) {
    assert(!Runtime &&
           "trace recording and a profiling runtime are exclusive");
    assert(!Epoch && "trace recording and an epoch hook are exclusive");
    if (TraceRec->timestampsEnabled())
      return HasObs ? runImpl<true, false, false, true, false, true>()
                    : runImpl<false, false, false, true, false, true>();
    return HasObs ? runImpl<true, false, false, true, false>()
                  : runImpl<false, false, false, true, false>();
  }
  // The adaptive loop samples live counters, so it requires a runtime;
  // it takes precedence over telemetry (an adaptive run's correctness
  // depends on the epochs firing, telemetry is best-effort).
  if (Epoch) {
    assert(Runtime && "an epoch hook requires a profiling runtime");
    return HasObs ? runImpl<true, true, false, false, true>()
                  : runImpl<false, true, false, false, true>();
  }
  // Telemetry selects a separate specialization: when disabled (the
  // default), the dispatch loop that runs is compiled without any
  // counting code, so the clean fast path is bit-identical to the
  // pre-telemetry engine and pays only this one cached boolean test.
  if (obs::interpStatsEnabled()) {
    if (Runtime)
      return HasObs ? runImpl<true, true, true, false, false>()
                    : runImpl<false, true, true, false, false>();
    return HasObs ? runImpl<true, false, true, false, false>()
                  : runImpl<false, false, true, false, false>();
  }
  if (Runtime)
    return HasObs ? runImpl<true, true, false, false, false>()
                  : runImpl<false, true, false, false, false>();
  return HasObs ? runImpl<true, false, false, false, false>()
                : runImpl<false, false, false, false, false>();
}

#include "interp/InterpreterLoop.inc"

template RunResult Interpreter::runImpl<false, false, false, false, false>();
template RunResult Interpreter::runImpl<false, true, false, false, false>();
template RunResult Interpreter::runImpl<true, false, false, false, false>();
template RunResult Interpreter::runImpl<true, true, false, false, false>();
