//===- interp/Interpreter.cpp - IR interpreter -----------------------------===//

#include "interp/Interpreter.h"

#include "support/Rng.h"

#include <cassert>

using namespace ppp;

ExecObserver::~ExecObserver() = default;

void ProfileRuntime::clearCounts() {
  for (PathTable &T : Tables) {
    switch (T.kind()) {
    case PathTable::Kind::None:
      break;
    case PathTable::Kind::Array:
      T = PathTable::makeArray(T.arraySize());
      break;
    case PathTable::Kind::Hash:
      T = PathTable::makeHash();
      break;
    }
  }
}

namespace {

/// One activation record.
struct Frame {
  FuncId F = -1;
  BlockId Block = 0;
  size_t Ip = 0;          ///< Next instruction index within Block.
  int64_t PathReg = 0;    ///< Ball-Larus path register r.
  RegId CallerDest = -1;  ///< Caller register receiving the return value.
  std::vector<int64_t> Regs;
};

} // namespace

Interpreter::Interpreter(const Module &Mod, const InterpOptions &Options)
    : M(Mod), Opts(Options) {
  HashedTable.assign(M.numFunctions(), false);
}

void Interpreter::setProfileRuntime(ProfileRuntime *RT) {
  Runtime = RT;
  for (unsigned F = 0; F < M.numFunctions(); ++F)
    HashedTable[F] =
        RT && RT->table(static_cast<FuncId>(F)).kind() == PathTable::Kind::Hash;
}

RunResult Interpreter::run() {
  RunResult Result;

  // Deterministic pseudo-random memory image.
  std::vector<int64_t> Mem(M.MemWords);
  {
    Rng MemRng(Opts.MemSeed);
    for (int64_t &W : Mem)
      W = static_cast<int64_t>(MemRng.next() >> 16); // Keep values modest.
  }
  uint64_t AddrMask = M.MemWords - 1;

  std::vector<Frame> Stack;
  auto PushFrame = [&](FuncId F, RegId CallerDest,
                       const int64_t *Args, unsigned NumArgs) {
    const Function &Fn = M.function(F);
    Frame Fr;
    Fr.F = F;
    Fr.Block = Fn.entryBlock();
    Fr.Ip = 0;
    Fr.CallerDest = CallerDest;
    Fr.Regs.assign(Fn.NumRegs, 0);
    for (unsigned I = 0; I < NumArgs; ++I)
      Fr.Regs[I] = Args[I];
    Stack.push_back(std::move(Fr));
    for (ExecObserver *Obs : Observers)
      Obs->onFunctionEnter(F);
  };

  PushFrame(M.MainId, /*CallerDest=*/-1, nullptr, 0);

  uint64_t Fuel = Opts.Fuel;
  const CostModel &CM = Opts.Costs;

  while (!Stack.empty()) {
    Frame &Fr = Stack.back();
    const Function &Fn = M.function(Fr.F);
    const BasicBlock &BB = Fn.block(Fr.Block);
    assert(Fr.Ip < BB.Instrs.size() && "fell off the end of a block");
    const Instr &I = BB.Instrs[Fr.Ip];

    if (Fuel == 0) {
      Result.FuelExhausted = true;
      break;
    }
    --Fuel;
    ++Result.DynInstrs;
    Result.Cost += CM.costOf(I.Op, HashedTable[static_cast<size_t>(Fr.F)]);

    int64_t *R = Fr.Regs.data();
    auto TakeEdge = [&](unsigned SuccIdx) {
      for (ExecObserver *Obs : Observers)
        Obs->onEdge(Fr.F, Fr.Block, SuccIdx);
      Fr.Block = I.Targets[SuccIdx];
      Fr.Ip = 0;
    };

    switch (I.Op) {
    case Opcode::Const:
      R[I.A] = I.Imm;
      break;
    case Opcode::Mov:
      R[I.A] = R[I.B];
      break;
    case Opcode::Add:
      R[I.A] = static_cast<int64_t>(static_cast<uint64_t>(R[I.B]) +
                                    static_cast<uint64_t>(R[I.C]));
      break;
    case Opcode::Sub:
      R[I.A] = static_cast<int64_t>(static_cast<uint64_t>(R[I.B]) -
                                    static_cast<uint64_t>(R[I.C]));
      break;
    case Opcode::Mul:
      R[I.A] = static_cast<int64_t>(static_cast<uint64_t>(R[I.B]) *
                                    static_cast<uint64_t>(R[I.C]));
      break;
    case Opcode::DivU:
      R[I.A] = R[I.C] == 0
                   ? 0
                   : static_cast<int64_t>(static_cast<uint64_t>(R[I.B]) /
                                          static_cast<uint64_t>(R[I.C]));
      break;
    case Opcode::RemU:
      R[I.A] = R[I.C] == 0
                   ? 0
                   : static_cast<int64_t>(static_cast<uint64_t>(R[I.B]) %
                                          static_cast<uint64_t>(R[I.C]));
      break;
    case Opcode::And:
      R[I.A] = R[I.B] & R[I.C];
      break;
    case Opcode::Or:
      R[I.A] = R[I.B] | R[I.C];
      break;
    case Opcode::Xor:
      R[I.A] = R[I.B] ^ R[I.C];
      break;
    case Opcode::Shl:
      R[I.A] = static_cast<int64_t>(static_cast<uint64_t>(R[I.B])
                                    << (static_cast<uint64_t>(R[I.C]) & 63));
      break;
    case Opcode::Shr:
      R[I.A] = static_cast<int64_t>(static_cast<uint64_t>(R[I.B]) >>
                                    (static_cast<uint64_t>(R[I.C]) & 63));
      break;
    case Opcode::AddImm:
      R[I.A] = static_cast<int64_t>(static_cast<uint64_t>(R[I.B]) +
                                    static_cast<uint64_t>(I.Imm));
      break;
    case Opcode::MulImm:
      R[I.A] = static_cast<int64_t>(static_cast<uint64_t>(R[I.B]) *
                                    static_cast<uint64_t>(I.Imm));
      break;
    case Opcode::CmpEq:
      R[I.A] = R[I.B] == R[I.C];
      break;
    case Opcode::CmpNe:
      R[I.A] = R[I.B] != R[I.C];
      break;
    case Opcode::CmpLt:
      R[I.A] = R[I.B] < R[I.C];
      break;
    case Opcode::CmpLe:
      R[I.A] = R[I.B] <= R[I.C];
      break;
    case Opcode::Load:
      R[I.A] = Mem[static_cast<uint64_t>(R[I.B]) & AddrMask];
      break;
    case Opcode::Store:
      Mem[static_cast<uint64_t>(R[I.B]) & AddrMask] = R[I.A];
      break;

    case Opcode::Call: {
      int64_t Args[MaxCallArgs];
      for (unsigned AI = 0; AI < I.NumArgs; ++AI)
        Args[AI] = R[I.Args[AI]];
      ++Fr.Ip; // Resume after the call on return.
      FuncId Callee = I.Callee;
      uint8_t NumArgs = I.NumArgs;
      RegId Dest = I.A;
      // NOTE: PushFrame may reallocate Stack; Fr/R/I are dead after it.
      PushFrame(Callee, Dest, Args, NumArgs);
      continue;
    }

    case Opcode::Br:
      TakeEdge(0);
      continue;
    case Opcode::CondBr:
      TakeEdge(R[I.A] != 0 ? 0 : 1);
      continue;
    case Opcode::Switch:
      TakeEdge(static_cast<unsigned>(static_cast<uint64_t>(R[I.A]) %
                                     I.Targets.size()));
      continue;

    case Opcode::Ret: {
      int64_t Value = R[I.A];
      FuncId F = Fr.F;
      RegId Dest = Fr.CallerDest;
      for (ExecObserver *Obs : Observers)
        Obs->onFunctionExit(F);
      Stack.pop_back();
      if (Stack.empty()) {
        Result.ReturnValue = Value;
      } else if (Dest >= 0) {
        Stack.back().Regs[static_cast<size_t>(Dest)] = Value;
      }
      continue;
    }

    case Opcode::ProfSet:
      Fr.PathReg = I.Imm;
      break;
    case Opcode::ProfAdd:
      Fr.PathReg += I.Imm;
      break;
    case Opcode::ProfCountIdx:
      assert(Runtime && "profiled module run without a ProfileRuntime");
      Runtime->table(Fr.F).increment(Fr.PathReg + I.Imm);
      break;
    case Opcode::ProfCountConst:
      assert(Runtime && "profiled module run without a ProfileRuntime");
      Runtime->table(Fr.F).increment(I.Imm);
      break;
    case Opcode::ProfCheckedCountIdx:
      assert(Runtime && "profiled module run without a ProfileRuntime");
      Runtime->table(Fr.F).incrementChecked(Fr.PathReg + I.Imm);
      break;
    }
    ++Fr.Ip;
  }

  // FNV-1a over the final memory image and the return value gives a
  // cheap semantic fingerprint for preservation tests.
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint64_t V) {
    for (unsigned B = 0; B < 8; ++B) {
      H ^= (V >> (B * 8)) & 0xff;
      H *= 1099511628211ULL;
    }
  };
  for (int64_t W : Mem)
    Mix(static_cast<uint64_t>(W));
  Mix(static_cast<uint64_t>(Result.ReturnValue));
  Result.MemChecksum = H;
  return Result;
}
