//===- interp/Interpreter.cpp - IR interpreter -----------------------------===//
///
/// run() is a thin dispatcher over four specializations of runImpl<>,
/// selected by whether observers and a profiling runtime are attached.
/// The specializations must stay semantically identical: the
/// determinism test in tests/fastpath_test.cpp asserts bit-equal
/// RunResults across them for the whole benchmark suite.
///
/// Dispatch is threaded (labels-as-values) under GCC/Clang: every
/// opcode body ends in its own indirect jump, so the branch predictor
/// learns per-opcode successor patterns instead of sharing one
/// hard-to-predict dispatch branch. Other compilers get a portable
/// switch loop with identical bodies (the PPP_OP/PPP_NEXT/PPP_JUMP
/// macros expand to labels or cases).
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

using namespace ppp;

ExecObserver::~ExecObserver() = default;

namespace {

/// One activation record. Live execution state (instruction pointer,
/// path register) is cached in locals inside the dispatch loop and
/// spilled here only across calls and returns.
struct Frame {
  const DecodedFunction *DF = nullptr;
  uint32_t Ip = 0;        ///< Flat offset of the next instruction.
  uint32_t RegBase = 0;   ///< This frame's slice of the register arena.
  int64_t PathReg = 0;    ///< Ball-Larus path register r.
  RegId CallerDest = -1;  ///< Caller register receiving the return value.
  FuncId F = -1;
  PathTable *Table = nullptr; ///< Resolved profiling table (runtime runs).
};

} // namespace

Interpreter::Interpreter(const Module &Mod, const InterpOptions &Options)
    : DM(Mod, Options.Costs), Opts(Options) {}

void Interpreter::setProfileRuntime(ProfileRuntime *RT) {
  Runtime = RT;
  DM.repriceProfilingCosts(Opts.Costs, RT);
}

RunResult Interpreter::run() {
  const bool HasObs = !Observers.empty();
  if (Runtime)
    return HasObs ? runImpl<true, true>() : runImpl<false, true>();
  return HasObs ? runImpl<true, false>() : runImpl<false, false>();
}

#if defined(__GNUC__) || defined(__clang__)
#define PPP_THREADED_DISPATCH 1
#else
#define PPP_THREADED_DISPATCH 0
#endif

#if PPP_THREADED_DISPATCH
// Fetch, charge, and jump to the next opcode body. Expanded at the end
// of every body, so each gets its own indirect branch.
#define PPP_OP(Name) Op_##Name
#define PPP_DISPATCH()                                                       \
  do {                                                                       \
    I = Code + Ip;                                                           \
    if (Fuel == 0) [[unlikely]] {                                            \
      Result.FuelExhausted = true;                                           \
      goto Finish;                                                           \
    }                                                                        \
    --Fuel;                                                                  \
    Cost += I->Cost;                                                         \
    goto *JumpTable[static_cast<uint8_t>(I->Op)];                            \
  } while (0)
#define PPP_NEXT()                                                           \
  do {                                                                       \
    ++Ip;                                                                    \
    PPP_DISPATCH();                                                          \
  } while (0)
#define PPP_JUMP() PPP_DISPATCH() /* Ip already set by the branch body. */
#else
#define PPP_OP(Name) case Opcode::Name
#define PPP_NEXT() break    /* Falls out of the switch into ++Ip. */
#define PPP_JUMP() continue /* Ip already set; skip ++Ip. */
#endif

template <bool HasObservers, bool HasRuntime>
RunResult Interpreter::runImpl() {
  RunResult Result;

  // Deterministic pseudo-random memory image.
  std::vector<int64_t> Mem(DM.MemWords);
  {
    Rng MemRng(Opts.MemSeed);
    for (int64_t &W : Mem)
      W = static_cast<int64_t>(MemRng.next() >> 16); // Keep values modest.
  }
  const uint64_t AddrMask = DM.AddrMask;

  std::vector<Frame> Stack;
  std::vector<int64_t> Regs; // Shared register arena, one slice per frame.
  auto PushFrame = [&](FuncId F, RegId CallerDest, const int64_t *Args,
                       unsigned NumArgs) {
    const DecodedFunction &DF = DM.Functions[static_cast<size_t>(F)];
    Frame Fr;
    Fr.DF = &DF;
    Fr.Ip = 0;
    Fr.RegBase = static_cast<uint32_t>(Regs.size());
    Fr.CallerDest = CallerDest;
    Fr.F = F;
    if constexpr (HasRuntime)
      Fr.Table = &Runtime->table(F);
    Regs.resize(Regs.size() + DF.NumRegs, 0);
    std::copy(Args, Args + NumArgs,
              Regs.begin() + static_cast<std::ptrdiff_t>(Fr.RegBase));
    Stack.push_back(Fr);
    if constexpr (HasObservers)
      for (ExecObserver *Obs : Observers)
        Obs->onFunctionEnter(F);
  };

  PushFrame(DM.MainId, /*CallerDest=*/-1, nullptr, 0);

  // DynInstrs is derived from the fuel countdown (DynInstrs =
  // Opts.Fuel - Fuel) so the dispatch loop maintains one counter, not
  // two.
  uint64_t Fuel = Opts.Fuel;
  uint64_t Cost = 0;

  while (true) {
    // (Re)load the top frame's execution state into locals; dispatch
    // runs entirely on them until control leaves the frame.
    Frame &Fr = Stack.back();
    const DecodedInstr *const Code = Fr.DF->Code.data();
    const uint32_t *const TargetPool = Fr.DF->Targets.data();
    int64_t *const R = Regs.data() + Fr.RegBase;
    [[maybe_unused]] const FuncId F = Fr.F;
    [[maybe_unused]] PathTable *const Table = HasRuntime ? Fr.Table : nullptr;
    uint32_t Ip = Fr.Ip;
    int64_t PathReg = Fr.PathReg;

#if PPP_THREADED_DISPATCH
    // Indexed by the Opcode enumerator value; must match the enum order
    // in ir/Opcode.h exactly.
    static const void *const JumpTable[] = {
        &&Op_Const,  &&Op_Mov,    &&Op_Add,     &&Op_Sub,
        &&Op_Mul,    &&Op_DivU,   &&Op_RemU,    &&Op_And,
        &&Op_Or,     &&Op_Xor,    &&Op_Shl,     &&Op_Shr,
        &&Op_AddImm, &&Op_MulImm, &&Op_CmpEq,   &&Op_CmpNe,
        &&Op_CmpLt,  &&Op_CmpLe,  &&Op_Load,    &&Op_Store,
        &&Op_Call,   &&Op_Br,     &&Op_CondBr,  &&Op_Switch,
        &&Op_Ret,    &&Op_ProfSet, &&Op_ProfAdd, &&Op_ProfCountIdx,
        &&Op_ProfCountConst, &&Op_ProfCheckedCountIdx};
    const DecodedInstr *I;
    PPP_DISPATCH();
#else
    for (;;) {
      const DecodedInstr *const I = &Code[Ip];
      if (Fuel == 0) [[unlikely]] {
        Result.FuelExhausted = true;
        goto Finish;
      }
      --Fuel;
      Cost += I->Cost;

      switch (I->Op) {
#endif

      PPP_OP(Const):
        R[I->A] = I->Imm;
        PPP_NEXT();
      PPP_OP(Mov):
        R[I->A] = R[I->B];
        PPP_NEXT();
      PPP_OP(Add):
        R[I->A] = static_cast<int64_t>(static_cast<uint64_t>(R[I->B]) +
                                       static_cast<uint64_t>(R[I->C]));
        PPP_NEXT();
      PPP_OP(Sub):
        R[I->A] = static_cast<int64_t>(static_cast<uint64_t>(R[I->B]) -
                                       static_cast<uint64_t>(R[I->C]));
        PPP_NEXT();
      PPP_OP(Mul):
        R[I->A] = static_cast<int64_t>(static_cast<uint64_t>(R[I->B]) *
                                       static_cast<uint64_t>(R[I->C]));
        PPP_NEXT();
      PPP_OP(DivU):
        R[I->A] = R[I->C] == 0
                      ? 0
                      : static_cast<int64_t>(static_cast<uint64_t>(R[I->B]) /
                                             static_cast<uint64_t>(R[I->C]));
        PPP_NEXT();
      PPP_OP(RemU):
        R[I->A] = R[I->C] == 0
                      ? 0
                      : static_cast<int64_t>(static_cast<uint64_t>(R[I->B]) %
                                             static_cast<uint64_t>(R[I->C]));
        PPP_NEXT();
      PPP_OP(And):
        R[I->A] = R[I->B] & R[I->C];
        PPP_NEXT();
      PPP_OP(Or):
        R[I->A] = R[I->B] | R[I->C];
        PPP_NEXT();
      PPP_OP(Xor):
        R[I->A] = R[I->B] ^ R[I->C];
        PPP_NEXT();
      PPP_OP(Shl):
        R[I->A] = static_cast<int64_t>(static_cast<uint64_t>(R[I->B])
                                       << (static_cast<uint64_t>(R[I->C]) & 63));
        PPP_NEXT();
      PPP_OP(Shr):
        R[I->A] = static_cast<int64_t>(static_cast<uint64_t>(R[I->B]) >>
                                       (static_cast<uint64_t>(R[I->C]) & 63));
        PPP_NEXT();
      PPP_OP(AddImm):
        R[I->A] = static_cast<int64_t>(static_cast<uint64_t>(R[I->B]) +
                                       static_cast<uint64_t>(I->Imm));
        PPP_NEXT();
      PPP_OP(MulImm):
        R[I->A] = static_cast<int64_t>(static_cast<uint64_t>(R[I->B]) *
                                       static_cast<uint64_t>(I->Imm));
        PPP_NEXT();
      PPP_OP(CmpEq):
        R[I->A] = R[I->B] == R[I->C];
        PPP_NEXT();
      PPP_OP(CmpNe):
        R[I->A] = R[I->B] != R[I->C];
        PPP_NEXT();
      PPP_OP(CmpLt):
        R[I->A] = R[I->B] < R[I->C];
        PPP_NEXT();
      PPP_OP(CmpLe):
        R[I->A] = R[I->B] <= R[I->C];
        PPP_NEXT();
      PPP_OP(Load):
        R[I->A] = Mem[static_cast<uint64_t>(R[I->B]) & AddrMask];
        PPP_NEXT();
      PPP_OP(Store):
        Mem[static_cast<uint64_t>(R[I->B]) & AddrMask] = R[I->A];
        PPP_NEXT();

      PPP_OP(Call): {
        int64_t Args[MaxCallArgs];
        for (unsigned AI = 0; AI < I->NumArgs; ++AI)
          Args[AI] = R[I->Args[AI]];
        Fr.Ip = Ip + 1; // Resume after the call on return.
        Fr.PathReg = PathReg;
        FuncId Callee = I->Callee;
        uint8_t NumArgs = I->NumArgs;
        RegId Dest = I->A;
        // NOTE: PushFrame may reallocate Stack and Regs; every cached
        // pointer (Fr, Code, R, I) is dead after it.
        PushFrame(Callee, Dest, Args, NumArgs);
        goto FrameChanged;
      }

      PPP_OP(Br):
        if constexpr (HasObservers)
          for (ExecObserver *Obs : Observers)
            Obs->onEdge(F, I->Block, 0);
        Ip = TargetPool[I->TargetsBegin];
        PPP_JUMP();
      PPP_OP(CondBr): {
        unsigned SuccIdx = R[I->A] != 0 ? 0 : 1;
        if constexpr (HasObservers)
          for (ExecObserver *Obs : Observers)
            Obs->onEdge(F, I->Block, SuccIdx);
        Ip = TargetPool[I->TargetsBegin + SuccIdx];
        PPP_JUMP();
      }
      PPP_OP(Switch): {
        unsigned SuccIdx = static_cast<unsigned>(
            static_cast<uint64_t>(R[I->A]) % I->NumTargets);
        if constexpr (HasObservers)
          for (ExecObserver *Obs : Observers)
            Obs->onEdge(F, I->Block, SuccIdx);
        Ip = TargetPool[I->TargetsBegin + SuccIdx];
        PPP_JUMP();
      }

      PPP_OP(Ret): {
        int64_t Value = R[I->A];
        RegId Dest = Fr.CallerDest;
        uint32_t Base = Fr.RegBase;
        if constexpr (HasObservers)
          for (ExecObserver *Obs : Observers)
            Obs->onFunctionExit(F);
        Stack.pop_back();
        Regs.resize(Base);
        if (Stack.empty()) {
          Result.ReturnValue = Value;
          goto Finish;
        }
        if (Dest >= 0)
          Regs[Stack.back().RegBase + static_cast<uint32_t>(Dest)] = Value;
        goto FrameChanged;
      }

      PPP_OP(ProfSet):
        PathReg = I->Imm;
        PPP_NEXT();
      PPP_OP(ProfAdd):
        PathReg += I->Imm;
        PPP_NEXT();
      PPP_OP(ProfCountIdx):
        assert(HasRuntime && "profiled module run without a ProfileRuntime");
        if constexpr (HasRuntime)
          Table->increment(PathReg + I->Imm);
        PPP_NEXT();
      PPP_OP(ProfCountConst):
        assert(HasRuntime && "profiled module run without a ProfileRuntime");
        if constexpr (HasRuntime)
          Table->increment(I->Imm);
        PPP_NEXT();
      PPP_OP(ProfCheckedCountIdx):
        assert(HasRuntime && "profiled module run without a ProfileRuntime");
        if constexpr (HasRuntime)
          Table->incrementChecked(PathReg + I->Imm);
        PPP_NEXT();

#if !PPP_THREADED_DISPATCH
      }
      ++Ip;
    }
#endif
  FrameChanged:;
  }

Finish:
  Result.DynInstrs = Opts.Fuel - Fuel;
  Result.Cost = Cost;

  // FNV-1a over the final memory image and the return value gives a
  // cheap semantic fingerprint for preservation tests.
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint64_t V) {
    for (unsigned B = 0; B < 8; ++B) {
      H ^= (V >> (B * 8)) & 0xff;
      H *= 1099511628211ULL;
    }
  };
  for (int64_t W : Mem)
    Mix(static_cast<uint64_t>(W));
  Mix(static_cast<uint64_t>(Result.ReturnValue));
  Result.MemChecksum = H;
  return Result;
}
