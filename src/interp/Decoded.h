//===- interp/Decoded.h - Pre-decoded flat code ----------------*- C++ -*-===//
///
/// \file
/// The interpreter's internal code representation. The IR stores each
/// function as per-block `std::vector<Instr>`, which forces the hot
/// dispatch loop through three dependent indirections per instruction
/// (function -> block -> instruction) and re-resolves branch targets to
/// (block, index 0) on every taken edge.
///
/// Decoding flattens one function at a time:
///
///  - all blocks concatenate into one contiguous `DecodedInstr` array,
///    so execution advances a single flat instruction pointer;
///  - branch targets become precomputed flat offsets (the start offset
///    of the successor block), pooled per function;
///  - each instruction carries its cost-model weight, so the dispatch
///    loop adds a field instead of switching over the opcode twice;
///  - the source block id rides along on terminators, because edge
///    observers identify edges as (function, source block, successor
///    index).
///
/// Functions decode independently (first-touch lazily, see
/// interp/VersionTable.h), and a decoded function is a *version*: the
/// adaptive controller decodes re-optimized bodies of the same FuncId
/// and hot-swaps them at call boundaries. Decoded code is a cache: it
/// never changes module semantics, and the `RunResult` of executing it
/// is bit-identical to walking the IR.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_INTERP_DECODED_H
#define PPP_INTERP_DECODED_H

#include "interp/CostModel.h"
#include "ir/Module.h"

#include <array>
#include <cstdint>
#include <vector>

namespace ppp {

/// One flattened instruction. Same semantic fields as Instr, plus the
/// precomputed dispatch data (cost, flat branch targets, source block).
struct DecodedInstr {
  Opcode Op = Opcode::Const;
  uint8_t NumArgs = 0;    ///< Call only.
  uint16_t NumTargets = 0; ///< Terminators only (Switch modulo base).
  uint32_t Cost = 0;      ///< Precomputed cost-model weight.
  RegId A = -1;
  RegId B = -1;
  RegId C = -1;
  int64_t Imm = 0;
  FuncId Callee = -1;      ///< Call only.
  BlockId Block = -1;      ///< Owning block (edge-observer source id).
  uint32_t TargetsBegin = 0; ///< Index into DecodedFunction::Targets.
  std::array<RegId, MaxCallArgs> Args = {-1, -1, -1, -1};
};

/// One function's flat code -- one *version* of that function.
struct DecodedFunction {
  unsigned NumRegs = 0;
  unsigned NumParams = 0;
  std::vector<DecodedInstr> Code; ///< All blocks, concatenated in order.
  std::vector<uint32_t> BlockStart; ///< Flat offset of each block's first instruction.
  std::vector<uint32_t> Targets; ///< Pooled successor offsets (flat, per terminator).
};

/// Flattens \p Fn. \p HashedTable prices the ProfCount* ops for a
/// hash-organized PathTable (more expensive than array counters).
DecodedFunction decodeFunction(const Function &Fn, const CostModel &Costs,
                               bool HashedTable);

/// Re-derives the cost of every profiling-counter instruction in \p DF
/// for the given table kind. Called when a ProfileRuntime is attached
/// or detached after the function was already decoded.
void repriceProfilingCosts(DecodedFunction &DF, const CostModel &Costs,
                           bool HashedTable);

} // namespace ppp

#endif // PPP_INTERP_DECODED_H
