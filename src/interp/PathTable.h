//===- interp/PathTable.h - Path frequency counters ------------*- C++ -*-===//
///
/// \file
/// Runtime storage for path frequency counts, mirroring Section 7.4 of
/// the paper: 64-bit counters; a plain array when the routine has at
/// most 4000 possible paths (after cold-path elimination), otherwise a
/// hash table with 701 slots and three tries of secondary hashing plus a
/// "lost path" counter for conflicts.
///
/// As an engineering backstop, both variants bounds-check indices:
/// indices outside the statically computed range increment an Invalid
/// counter instead of corrupting memory (this should never fire; tests
/// assert it stays zero).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_INTERP_PATHTABLE_H
#define PPP_INTERP_PATHTABLE_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ppp {

/// Number of slots in the hash variant (prime; from the paper).
inline constexpr uint64_t PathHashSlots = 701;
/// Number of probes before declaring a path lost (from the paper).
inline constexpr unsigned PathHashTries = 3;

/// Remainder modulo a small compile-time constant via a fixed-point
/// reciprocal multiply (Granlund-Montgomery), replacing the hardware
/// divide the `%` operator would emit. The hash-variant counter probe
/// computes three remainders per increment, so this is its hot path.
///
/// With the round-up magic M = ceil(2^73 / D), the quotient
/// floor(N * M / 2^73) is *exact* for every 64-bit N whenever
/// M*D - 2^73 <= 2^9 (Granlund & Montgomery, PLDI '94, Thm 4.2) --
/// which holds for both divisors the probe uses (701 and 699), so the
/// remainder is one multiply-high, a shift, and a multiply-back, with
/// no correction step. Divisors where the bound fails fall back to a
/// floor magic that undershoots by at most one (truncation error is
/// below N/2^73 < 1) plus one conditional subtract. 2^73/D fits in 64
/// bits for D > 512.
/// Compile-time precondition of fastRemainder. static_assert messages
/// must be string literals, so the offending divisor cannot appear in
/// the message itself; instead the check lives in this helper, whose
/// failing instantiation -- FastRemainderDivisorInRange<D, false> --
/// spells out the bad D in the compiler's "in instantiation of"
/// backtrace. Do not pass the second argument explicitly.
template <uint64_t D, bool InRange = (D > 512 && D < (uint64_t(1) << 32))>
struct FastRemainderDivisorInRange {
  static_assert(InRange,
                "fastRemainder: the reciprocal shift of 73 requires a "
                "divisor D with 512 < D < 2^32; the rejected D is the "
                "first argument of the FastRemainderDivisorInRange<D, "
                "false> instantiation reported just above/below this "
                "message");
  static constexpr bool Value = InRange;
};

template <uint64_t D> inline uint64_t fastRemainder(uint64_t N) {
  static_assert(FastRemainderDivisorInRange<D>::Value,
                "reciprocal shift of 73 requires 512 < D < 2^32");
#if defined(__SIZEOF_INT128__)
  constexpr int Shift = 73;
  constexpr unsigned __int128 Pow = static_cast<unsigned __int128>(1) << Shift;
  constexpr uint64_t CeilMagic = static_cast<uint64_t>((Pow + D - 1) / D);
  constexpr bool Exact =
      static_cast<unsigned __int128>(CeilMagic) * D - Pow <=
      (static_cast<unsigned __int128>(1) << (Shift - 64));
  if constexpr (Exact) {
    uint64_t Q = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(N) * CeilMagic) >> Shift);
    return N - Q * D;
  } else {
    constexpr uint64_t FloorMagic = static_cast<uint64_t>(Pow / D);
    uint64_t Q = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(N) * FloorMagic) >> Shift);
    uint64_t R = N - Q * D;
    if (R >= D)
      R -= D;
    return R;
  }
#else
  return N % D;
#endif
}

/// Counter-update statistics accumulated by the telemetry-enabled
/// interpreter specialization (obs::interpStatsEnabled()). Locals in
/// the dispatch loop, flushed to the obs registry once per run; the
/// stats-free increment() overloads never touch them.
struct PathProbeStats {
  uint64_t Increments = 0; ///< Counter updates attempted.
  uint64_t Probes = 0;     ///< Hash slots examined (array hits count 1).
  uint64_t Collisions = 0; ///< Probes that found another path's slot.
  uint64_t Lost = 0;       ///< Updates dropped after PathHashTries probes.
  uint64_t Invalid = 0;    ///< Out-of-range indices (backstop counter).
  uint64_t Cold = 0;       ///< Checked-counting poison hits.
};

/// A per-function path frequency table.
class PathTable {
public:
  enum class Kind : uint8_t {
    None,  ///< Function not instrumented.
    Array, ///< Direct-indexed 64-bit counters.
    Hash,  ///< 701-slot open-addressed hash with 3 probes.
  };

  PathTable() = default;

  static PathTable makeArray(uint64_t Size);
  static PathTable makeHash();

  Kind kind() const { return TableKind; }

  /// Records one execution of the path with index \p Index.
  void increment(int64_t Index);

  /// increment() plus probe accounting into \p S. Must mutate the table
  /// exactly like increment() -- the fastpath guard test pins that the
  /// telemetry specialization is observationally identical.
  void incrementStats(int64_t Index, PathProbeStats &S);

  /// Original-TPP checked counting: negative indices mean the register
  /// was poisoned on a cold edge; they bump the cold counter.
  void incrementChecked(int64_t Index) {
    if (Index < 0)
      ++ColdChecked;
    else
      increment(Index);
  }

  /// Records \p N executions of the path with index \p Index, exactly
  /// equivalent to \p N increment() calls: the first claims or finds the
  /// slot, the rest land where it landed, so batching preserves slot
  /// assignment and lost/invalid accounting bit-for-bit. The trace
  /// decoder's run-length-batched replay depends on this equivalence
  /// (pathtable_test pins it).
  void add(int64_t Index, uint64_t N);

  /// incrementChecked() \p N times (same batching equivalence).
  void addChecked(int64_t Index, uint64_t N) {
    if (Index < 0)
      ColdChecked += N;
    else
      add(Index, N);
  }

  /// incrementChecked() with probe accounting into \p S.
  void incrementCheckedStats(int64_t Index, PathProbeStats &S) {
    if (Index < 0) {
      ++ColdChecked;
      ++S.Increments;
      ++S.Cold;
    } else {
      incrementStats(Index, S);
    }
  }

  /// Cold paths caught by checked counting.
  uint64_t coldCheckedCount() const { return ColdChecked; }

  /// Count recorded for \p Index (0 if absent or lost).
  uint64_t countFor(int64_t Index) const;

  /// Zeroes every counter (including lost/invalid/cold) in place,
  /// keeping the table kind and its storage. Equivalent to rebuilding
  /// the table fresh, without the allocation churn.
  void reset() {
    std::fill(Counts.begin(), Counts.end(), 0);
    std::fill(Slots.begin(), Slots.end(), HashSlot());
    Lost = 0;
    Invalid = 0;
    ColdChecked = 0;
  }

  /// Invokes \p Callback for every (index, count) pair with count > 0.
  /// Takes the callable as a template parameter so hot readout loops
  /// pay no std::function type-erasure cost.
  template <typename CallbackT> void forEach(CallbackT &&Callback) const {
    switch (TableKind) {
    case Kind::None:
      return;
    case Kind::Array:
      for (size_t I = 0; I < Counts.size(); ++I)
        if (Counts[I] > 0)
          Callback(static_cast<int64_t>(I), Counts[I]);
      return;
    case Kind::Hash:
      for (const HashSlot &S : Slots)
        if (S.Count > 0)
          Callback(S.Key, S.Count);
      return;
    }
  }

  /// Paths dropped due to hash conflicts.
  uint64_t lostCount() const { return Lost; }

  /// Out-of-range indices (engineering backstop; should be zero).
  uint64_t invalidCount() const { return Invalid; }

  /// Array variant size (0 for other kinds).
  uint64_t arraySize() const {
    return TableKind == Kind::Array ? Counts.size() : 0;
  }

private:
  struct HashSlot {
    int64_t Key = -1;
    uint64_t Count = 0;
  };

  Kind TableKind = Kind::None;
  std::vector<uint64_t> Counts;  ///< Array variant.
  std::vector<HashSlot> Slots;   ///< Hash variant.
  uint64_t Lost = 0;
  uint64_t Invalid = 0;
  uint64_t ColdChecked = 0;
};

} // namespace ppp

#endif // PPP_INTERP_PATHTABLE_H
