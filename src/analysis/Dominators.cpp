//===- analysis/Dominators.cpp - Dominator tree ----------------------------===//

#include "analysis/Dominators.h"

using namespace ppp;

Dominators Dominators::compute(const CfgView &Cfg) {
  unsigned N = Cfg.numBlocks();
  std::vector<BlockId> Rpo = reversePostOrder(Cfg);
  std::vector<int> RpoIndex(N, -1);
  for (size_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[static_cast<size_t>(Rpo[I])] = static_cast<int>(I);

  Dominators D;
  D.Idom.assign(N, -1);

  auto Intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (RpoIndex[static_cast<size_t>(A)] >
             RpoIndex[static_cast<size_t>(B)])
        A = D.Idom[static_cast<size_t>(A)];
      while (RpoIndex[static_cast<size_t>(B)] >
             RpoIndex[static_cast<size_t>(A)])
        B = D.Idom[static_cast<size_t>(B)];
    }
    return A;
  };

  D.Idom[0] = 0; // Sentinel: entry's idom is itself during iteration.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Rpo) {
      if (B == 0)
        continue;
      BlockId NewIdom = -1;
      for (int EId : Cfg.inEdges(B)) {
        BlockId P = Cfg.edge(EId).Src;
        if (D.Idom[static_cast<size_t>(P)] == -1)
          continue; // Predecessor not yet processed or unreachable.
        NewIdom = NewIdom == -1 ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != -1 && D.Idom[static_cast<size_t>(B)] != NewIdom) {
        D.Idom[static_cast<size_t>(B)] = NewIdom;
        Changed = true;
      }
    }
  }
  D.Idom[0] = -1; // Entry has no immediate dominator.
  return D;
}

bool Dominators::dominates(BlockId A, BlockId B) const {
  if (!isReachable(B) || !isReachable(A))
    return false;
  while (B != -1) {
    if (A == B)
      return true;
    B = Idom[static_cast<size_t>(B)];
  }
  return false;
}
