//===- analysis/StaticProfile.h - Heuristic frequencies --------*- C++ -*-===//
///
/// \file
/// The static frequency heuristic Ball-Larus profiling uses when no edge
/// profile exists: loops execute 10 times, branch directions split
/// evenly. PP's event-counting spanning tree is weighted with these
/// estimates; PPP replaces them with a real edge profile (Sec. 4.5).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_ANALYSIS_STATICPROFILE_H
#define PPP_ANALYSIS_STATICPROFILE_H

#include "analysis/CfgView.h"
#include "analysis/LoopInfo.h"

#include <cstdint>
#include <vector>

namespace ppp {

/// Heuristic execution-frequency estimates, scaled to integers.
struct StaticProfile {
  /// Estimated executions per block (entry = Scale).
  std::vector<int64_t> BlockFreq;
  /// Estimated traversals per CFG edge.
  std::vector<int64_t> EdgeFreq;
  /// The value assigned to one function invocation.
  static constexpr int64_t Scale = 1 << 10;
};

/// Estimates block and edge frequencies: propagate flow in DAG order
/// (ignoring back edges), boost loop headers by 10x per nesting level,
/// and split block flow evenly across successors.
StaticProfile estimateStaticProfile(const CfgView &Cfg, const LoopInfo &LI);

} // namespace ppp

#endif // PPP_ANALYSIS_STATICPROFILE_H
