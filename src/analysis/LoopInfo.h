//===- analysis/LoopInfo.h - Natural loop detection ------------*- C++ -*-===//
///
/// \file
/// Back-edge detection and natural-loop structure. Ball-Larus paths end
/// at back edges, so this analysis decides which edges the DAG
/// construction breaks, and it feeds the unroller and the obvious-loop
/// detection (TPP/PPP).
///
/// Back edges are DFS retreating edges; on reducible CFGs (all our
/// workloads) these coincide with natural back edges (target dominates
/// source). A loop groups all back edges sharing a header.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_ANALYSIS_LOOPINFO_H
#define PPP_ANALYSIS_LOOPINFO_H

#include "analysis/CfgView.h"

#include <vector>

namespace ppp {

class Dominators;

/// One natural loop (all back edges with the same header).
struct Loop {
  BlockId Header = -1;
  std::vector<int> BackEdgeIds;  ///< CFG edge ids (tail -> header).
  std::vector<BlockId> Blocks;   ///< Sorted loop body (includes Header).
  std::vector<int> EntryEdgeIds; ///< CFG edges from outside into Header.
  std::vector<int> ExitEdgeIds;  ///< CFG edges from body to outside.
  int Parent = -1;               ///< Enclosing loop index, or -1.
  unsigned Depth = 1;            ///< 1 for outermost loops.
  bool Natural = true;           ///< Header dominates all back-edge tails.

  bool contains(BlockId B) const;
  /// True if no other loop's header lies inside this loop.
  bool isInnermost(const std::vector<Loop> &All, size_t SelfIdx) const;
};

/// Loop nest of one function.
class LoopInfo {
public:
  static LoopInfo compute(const CfgView &Cfg);

  /// As above, but reuses \p Doms (which must describe \p Cfg) instead
  /// of computing a dominator tree internally. Pass nullptr to fall
  /// back to lazy computation -- loop-free functions never build one
  /// either way, so callers should only pass a tree they already have.
  static LoopInfo compute(const CfgView &Cfg, const Dominators *Doms);

  const std::vector<Loop> &loops() const { return Loops; }

  /// CFG edge ids that are back edges (DFS retreating edges), in
  /// deterministic (increasing id) order.
  const std::vector<int> &backEdges() const { return BackEdgeIds; }

  bool isBackEdge(int EdgeId) const {
    return IsBackEdge[static_cast<size_t>(EdgeId)];
  }

  /// Loop nesting depth of \p B (0 if not in any loop).
  unsigned loopDepth(BlockId B) const {
    return LoopDepth[static_cast<size_t>(B)];
  }

  /// Index into loops() of the innermost loop headed by \p B, or -1.
  int loopAtHeader(BlockId B) const {
    return HeaderLoop[static_cast<size_t>(B)];
  }

private:
  std::vector<Loop> Loops;
  std::vector<int> BackEdgeIds;
  std::vector<bool> IsBackEdge;
  std::vector<unsigned> LoopDepth;
  std::vector<int> HeaderLoop;
};

} // namespace ppp

#endif // PPP_ANALYSIS_LOOPINFO_H
