//===- analysis/CfgView.cpp - CFG edge enumeration -------------------------===//

#include "analysis/CfgView.h"

using namespace ppp;

CfgView::CfgView(const Function &Fn) : F(&Fn) {
  unsigned NumBlocks = Fn.numBlocks();
  OutIds.resize(NumBlocks);
  InIds.resize(NumBlocks);
  for (unsigned B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = Fn.block(static_cast<BlockId>(B));
    unsigned NumSucc = BB.numSuccessors();
    for (unsigned S = 0; S < NumSucc; ++S) {
      CfgEdge E;
      E.Id = static_cast<int>(Edges.size());
      E.Src = static_cast<BlockId>(B);
      E.SuccIdx = S;
      E.Dst = BB.successor(S);
      OutIds[B].push_back(E.Id);
      InIds[static_cast<size_t>(E.Dst)].push_back(E.Id);
      Edges.push_back(E);
    }
  }
}

std::vector<BlockId> ppp::reversePostOrder(const CfgView &Cfg) {
  unsigned N = Cfg.numBlocks();
  std::vector<uint8_t> State(N, 0); // 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<BlockId> PostOrder;
  PostOrder.reserve(N);

  // Iterative DFS: stack entries are (block, next successor index).
  std::vector<std::pair<BlockId, unsigned>> Stack;
  Stack.push_back({0, 0});
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    const std::vector<int> &Out = Cfg.outEdges(B);
    if (NextSucc < Out.size()) {
      BlockId Succ = Cfg.edge(Out[NextSucc]).Dst;
      ++NextSucc;
      if (State[static_cast<size_t>(Succ)] == 0) {
        State[static_cast<size_t>(Succ)] = 1;
        Stack.push_back({Succ, 0});
      }
      continue;
    }
    State[static_cast<size_t>(B)] = 2;
    PostOrder.push_back(B);
    Stack.pop_back();
  }
  return {PostOrder.rbegin(), PostOrder.rend()};
}
