//===- analysis/StaticProfile.cpp - Heuristic frequencies ------------------===//

#include "analysis/StaticProfile.h"

using namespace ppp;

StaticProfile ppp::estimateStaticProfile(const CfgView &Cfg,
                                         const LoopInfo &LI) {
  StaticProfile SP;
  unsigned N = Cfg.numBlocks();
  SP.BlockFreq.assign(N, 0);
  SP.EdgeFreq.assign(Cfg.numEdges(), 0);

  // Reverse postorder is a topological order once back edges are ignored
  // (the CFGs we process are reducible).
  std::vector<BlockId> Order = reversePostOrder(Cfg);
  for (BlockId B : Order) {
    int64_t In = B == 0 ? StaticProfile::Scale : 0;
    for (int EId : Cfg.inEdges(B))
      if (!LI.isBackEdge(EId))
        In += SP.EdgeFreq[static_cast<size_t>(EId)];
    // "Loops execute 10 times": a header sees its outside-in flow an
    // extra 9 times via the back edge.
    if (LI.loopAtHeader(B) != -1)
      In *= 10;
    if (In <= 0 && B != 0)
      In = 0;
    SP.BlockFreq[static_cast<size_t>(B)] = In;
    const std::vector<int> &Out = Cfg.outEdges(B);
    if (Out.empty())
      continue;
    int64_t Share = In / static_cast<int64_t>(Out.size());
    for (size_t I = 0; I < Out.size(); ++I) {
      // Give the remainder to the first successor so flow conserves.
      int64_t Extra =
          I == 0 ? In - Share * static_cast<int64_t>(Out.size()) : 0;
      SP.EdgeFreq[static_cast<size_t>(Out[I])] = Share + Extra;
    }
  }
  return SP;
}
