//===- analysis/Dominators.h - Dominator tree ------------------*- C++ -*-===//
///
/// \file
/// Immediate-dominator computation (Cooper-Harvey-Kennedy iterative
/// algorithm). Used to classify back edges as natural (target dominates
/// source) and by tests.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_ANALYSIS_DOMINATORS_H
#define PPP_ANALYSIS_DOMINATORS_H

#include "analysis/CfgView.h"

#include <vector>

namespace ppp {

/// Dominator information for blocks reachable from entry.
class Dominators {
public:
  /// Computes immediate dominators over \p Cfg.
  static Dominators compute(const CfgView &Cfg);

  /// Immediate dominator of \p B, or -1 for the entry block and for
  /// unreachable blocks.
  BlockId idom(BlockId B) const { return Idom[static_cast<size_t>(B)]; }

  /// Returns true if \p A dominates \p B (reflexive). Unreachable blocks
  /// dominate nothing and are dominated by nothing.
  bool dominates(BlockId A, BlockId B) const;

  /// Returns true if \p B is reachable from entry.
  bool isReachable(BlockId B) const {
    return B == 0 || Idom[static_cast<size_t>(B)] != -1;
  }

private:
  std::vector<BlockId> Idom;
};

} // namespace ppp

#endif // PPP_ANALYSIS_DOMINATORS_H
