//===- analysis/CfgView.h - CFG edge enumeration ---------------*- C++ -*-===//
///
/// \file
/// A frozen view of a function's control-flow edges. Every edge gets a
/// dense integer id; the (source block, successor index) pair is the
/// stable identity used by profiles, instrumenters, and the interpreter.
///
/// The view caches out-edge and in-edge adjacency. It must be rebuilt if
/// the function's terminators change.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_ANALYSIS_CFGVIEW_H
#define PPP_ANALYSIS_CFGVIEW_H

#include "ir/Function.h"

#include <cassert>
#include <vector>

namespace ppp {

/// One control-flow edge: the \p SuccIdx'th successor of block \p Src.
struct CfgEdge {
  int Id = -1;
  BlockId Src = -1;
  unsigned SuccIdx = 0;
  BlockId Dst = -1;
};

/// Immutable edge/adjacency view over a Function's CFG.
class CfgView {
public:
  explicit CfgView(const Function &F);

  const Function &function() const { return *F; }

  unsigned numBlocks() const { return static_cast<unsigned>(OutIds.size()); }
  unsigned numEdges() const { return static_cast<unsigned>(Edges.size()); }

  const CfgEdge &edge(int Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Edges.size() &&
           "edge id out of range");
    return Edges[static_cast<size_t>(Id)];
  }

  const std::vector<CfgEdge> &edges() const { return Edges; }

  /// Edge ids leaving \p B, in successor order.
  const std::vector<int> &outEdges(BlockId B) const {
    return OutIds[static_cast<size_t>(B)];
  }

  /// Edge ids entering \p B.
  const std::vector<int> &inEdges(BlockId B) const {
    return InIds[static_cast<size_t>(B)];
  }

  /// Looks up the edge id for (\p Src, \p SuccIdx).
  int edgeIdFor(BlockId Src, unsigned SuccIdx) const {
    const std::vector<int> &Out = OutIds[static_cast<size_t>(Src)];
    assert(SuccIdx < Out.size() && "successor index out of range");
    return Out[SuccIdx];
  }

  /// Returns true if \p E leaves a block with more than one successor
  /// (the paper's definition of a branch edge).
  bool isBranchEdge(int EdgeId) const {
    const CfgEdge &E = edge(EdgeId);
    return OutIds[static_cast<size_t>(E.Src)].size() > 1;
  }

private:
  const Function *F;
  std::vector<CfgEdge> Edges;
  std::vector<std::vector<int>> OutIds;
  std::vector<std::vector<int>> InIds;
};

/// Blocks reachable from entry, in reverse postorder of a DFS over all
/// CFG edges. Unreachable blocks are omitted.
std::vector<BlockId> reversePostOrder(const CfgView &Cfg);

} // namespace ppp

#endif // PPP_ANALYSIS_CFGVIEW_H
