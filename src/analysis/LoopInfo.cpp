//===- analysis/LoopInfo.cpp - Natural loop detection ----------------------===//

#include "analysis/LoopInfo.h"

#include "analysis/Dominators.h"

#include <algorithm>
#include <map>

using namespace ppp;

bool Loop::contains(BlockId B) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), B);
}

bool Loop::isInnermost(const std::vector<Loop> &All, size_t SelfIdx) const {
  for (size_t I = 0; I < All.size(); ++I)
    if (I != SelfIdx && All[I].Parent != -1 &&
        static_cast<size_t>(All[I].Parent) == SelfIdx)
      return false;
  // Parent links only capture immediate nesting; also check containment
  // directly in case of shared headers at different depths.
  for (size_t I = 0; I < All.size(); ++I)
    if (I != SelfIdx && contains(All[I].Header) && All[I].Header != Header)
      return false;
  return true;
}

/// Finds DFS retreating edges with an iterative DFS from entry, then
/// from every still-unvisited block in ascending id order. The extra
/// roots matter: a cycle confined to unreachable blocks has no path
/// from entry, so an entry-only DFS never marks its retreating edge,
/// the BLDag keeps a genuine cycle, and its topological sort silently
/// comes up short (the "DAG contains a cycle" assert is compiled out
/// of release builds). Dead code must still acyclify.
static std::vector<int> findRetreatingEdges(const CfgView &Cfg) {
  unsigned N = Cfg.numBlocks();
  std::vector<uint8_t> State(N, 0); // 0 unvisited, 1 on stack, 2 done.
  std::vector<int> Result;
  std::vector<std::pair<BlockId, unsigned>> Stack;
  for (unsigned Root = 0; Root < N; ++Root) {
    if (State[Root] != 0)
      continue;
    Stack.push_back({static_cast<BlockId>(Root), 0});
    State[Root] = 1;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      const std::vector<int> &Out = Cfg.outEdges(B);
      if (NextSucc < Out.size()) {
        int EId = Out[NextSucc];
        ++NextSucc;
        BlockId Succ = Cfg.edge(EId).Dst;
        uint8_t &S = State[static_cast<size_t>(Succ)];
        if (S == 1) {
          Result.push_back(EId); // Retreating: target is on the DFS stack.
        } else if (S == 0) {
          S = 1;
          Stack.push_back({Succ, 0});
        }
        continue;
      }
      State[static_cast<size_t>(B)] = 2;
      Stack.pop_back();
    }
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}

/// Collects the natural loop body for back edges into \p Header: the
/// header plus all blocks that reach a back-edge tail without passing
/// through the header.
static std::vector<BlockId> collectLoopBody(const CfgView &Cfg,
                                            BlockId Header,
                                            const std::vector<int> &BackIds) {
  std::vector<bool> InBody(Cfg.numBlocks(), false);
  InBody[static_cast<size_t>(Header)] = true;
  std::vector<BlockId> Work;
  for (int EId : BackIds) {
    BlockId Tail = Cfg.edge(EId).Src;
    if (!InBody[static_cast<size_t>(Tail)]) {
      InBody[static_cast<size_t>(Tail)] = true;
      Work.push_back(Tail);
    }
  }
  while (!Work.empty()) {
    BlockId B = Work.back();
    Work.pop_back();
    for (int EId : Cfg.inEdges(B)) {
      BlockId P = Cfg.edge(EId).Src;
      if (!InBody[static_cast<size_t>(P)]) {
        InBody[static_cast<size_t>(P)] = true;
        Work.push_back(P);
      }
    }
  }
  std::vector<BlockId> Body;
  for (unsigned B = 0; B < Cfg.numBlocks(); ++B)
    if (InBody[B])
      Body.push_back(static_cast<BlockId>(B));
  return Body;
}

LoopInfo LoopInfo::compute(const CfgView &Cfg) {
  return compute(Cfg, nullptr);
}

LoopInfo LoopInfo::compute(const CfgView &Cfg, const Dominators *Doms) {
  LoopInfo LI;
  unsigned N = Cfg.numBlocks();
  LI.IsBackEdge.assign(Cfg.numEdges(), false);
  LI.LoopDepth.assign(N, 0);
  LI.HeaderLoop.assign(N, -1);
  LI.BackEdgeIds = findRetreatingEdges(Cfg);
  for (int EId : LI.BackEdgeIds)
    LI.IsBackEdge[static_cast<size_t>(EId)] = true;
  if (LI.BackEdgeIds.empty())
    return LI;

  // A caller-provided tree (e.g. the analysis manager's cached one)
  // saves recomputation; otherwise build our own.
  Dominators Owned;
  if (!Doms) {
    Owned = Dominators::compute(Cfg);
    Doms = &Owned;
  }
  const Dominators &Dom = *Doms;

  // Group back edges by header.
  std::map<BlockId, std::vector<int>> ByHeader;
  for (int EId : LI.BackEdgeIds)
    ByHeader[Cfg.edge(EId).Dst].push_back(EId);

  for (auto &[Header, BackIds] : ByHeader) {
    Loop L;
    L.Header = Header;
    L.BackEdgeIds = BackIds;
    L.Natural = true;
    for (int EId : BackIds)
      if (!Dom.dominates(Header, Cfg.edge(EId).Src))
        L.Natural = false;
    L.Blocks = collectLoopBody(Cfg, Header, BackIds);
    for (BlockId B : L.Blocks) {
      for (int EId : Cfg.outEdges(B))
        if (!L.contains(Cfg.edge(EId).Dst))
          L.ExitEdgeIds.push_back(EId);
    }
    for (int EId : Cfg.inEdges(Header))
      if (!L.contains(Cfg.edge(EId).Src))
        L.EntryEdgeIds.push_back(EId);
    LI.HeaderLoop[static_cast<size_t>(Header)] =
        static_cast<int>(LI.Loops.size());
    LI.Loops.push_back(std::move(L));
  }

  // Nesting: parent = smallest strictly-containing loop; depth follows.
  for (size_t I = 0; I < LI.Loops.size(); ++I) {
    int Best = -1;
    size_t BestSize = 0;
    for (size_t J = 0; J < LI.Loops.size(); ++J) {
      if (I == J)
        continue;
      const Loop &Outer = LI.Loops[J];
      if (Outer.contains(LI.Loops[I].Header) &&
          Outer.Header != LI.Loops[I].Header &&
          Outer.Blocks.size() > LI.Loops[I].Blocks.size()) {
        if (Best == -1 || Outer.Blocks.size() < BestSize) {
          Best = static_cast<int>(J);
          BestSize = Outer.Blocks.size();
        }
      }
    }
    LI.Loops[I].Parent = Best;
  }
  for (size_t I = 0; I < LI.Loops.size(); ++I) {
    unsigned Depth = 1;
    int P = LI.Loops[I].Parent;
    while (P != -1) {
      ++Depth;
      P = LI.Loops[static_cast<size_t>(P)].Parent;
    }
    LI.Loops[I].Depth = Depth;
  }

  // Block loop depth: deepest loop containing the block.
  for (const Loop &L : LI.Loops)
    for (BlockId B : L.Blocks)
      LI.LoopDepth[static_cast<size_t>(B)] =
          std::max(LI.LoopDepth[static_cast<size_t>(B)], L.Depth);
  return LI;
}
