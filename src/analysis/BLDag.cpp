//===- analysis/BLDag.cpp - Ball-Larus acyclic path DAG --------------------===//

#include "analysis/BLDag.h"

#include <cassert>

using namespace ppp;

void BLDag::addEdge(DagEdge E) {
  E.Id = static_cast<int>(Edges.size());
  OutIds[static_cast<size_t>(E.Src)].push_back(E.Id);
  InIds[static_cast<size_t>(E.Dst)].push_back(E.Id);
  Edges.push_back(E);
}

BLDag BLDag::build(const CfgView &Cfg, const LoopInfo &LI,
                   const BuildOptions &Opts) {
  BLDag D;
  D.Cfg = &Cfg;
  unsigned NumBlocks = Cfg.numBlocks();
  D.ExitNode = static_cast<int>(NumBlocks);
  D.EntryNode = static_cast<int>(NumBlocks) + 1;
  D.NumNodes = static_cast<int>(NumBlocks) + 2;
  D.OutIds.resize(static_cast<size_t>(D.NumNodes));
  D.InIds.resize(static_cast<size_t>(D.NumNodes));

  auto IsCold = [&](int CfgEdgeId) {
    return Opts.ColdCfgEdges && Opts.ColdCfgEdges->count(CfgEdgeId) > 0;
  };
  auto IsDisconnected = [&](int CfgEdgeId) {
    return Opts.DisconnectedBackEdges &&
           Opts.DisconnectedBackEdges->count(CfgEdgeId) > 0;
  };

  // Only blocks reachable from entry contribute edges; dead blocks could
  // otherwise introduce cycles the back-edge set does not cover.
  std::vector<bool> Reachable(NumBlocks, false);
  for (BlockId B : reversePostOrder(Cfg))
    Reachable[static_cast<size_t>(B)] = true;

  // ENTRY -> entry block.
  {
    DagEdge E;
    E.Src = D.EntryNode;
    E.Dst = 0;
    E.Kind = DagEdgeKind::FnEntry;
    D.addEdge(E);
  }

  // Real edges and FnExit edges, in block order for determinism.
  for (unsigned B = 0; B < NumBlocks; ++B) {
    if (!Reachable[B])
      continue;
    const BasicBlock &BB = Cfg.function().block(static_cast<BlockId>(B));
    if (BB.terminator().Op == Opcode::Ret) {
      DagEdge E;
      E.Src = static_cast<int>(B);
      E.Dst = D.ExitNode;
      E.Kind = DagEdgeKind::FnExit;
      D.addEdge(E);
      continue;
    }
    for (int CfgEdgeId : Cfg.outEdges(static_cast<BlockId>(B))) {
      if (LI.isBackEdge(CfgEdgeId))
        continue;
      const CfgEdge &CE = Cfg.edge(CfgEdgeId);
      DagEdge E;
      E.Src = CE.Src;
      E.Dst = CE.Dst;
      E.Kind = DagEdgeKind::Real;
      E.CfgEdgeId = CfgEdgeId;
      E.Cold = IsCold(CfgEdgeId);
      E.IsBranch = Cfg.isBranchEdge(CfgEdgeId);
      D.addEdge(E);
    }
  }

  // Dummy edge pairs for back edges.
  for (int BackId : LI.backEdges()) {
    if (IsDisconnected(BackId))
      continue;
    const CfgEdge &CE = Cfg.edge(BackId);
    if (!Reachable[static_cast<size_t>(CE.Src)])
      continue;
    bool Cold = IsCold(BackId);
    DagEdge Exit;
    Exit.Src = CE.Src;
    Exit.Dst = D.ExitNode;
    Exit.Kind = DagEdgeKind::LoopExit;
    Exit.CfgEdgeId = BackId;
    Exit.Cold = Cold;
    // Taking the back edge consumes a branch decision if the tail block
    // has other successors.
    Exit.IsBranch = Cfg.isBranchEdge(BackId);
    D.addEdge(Exit);

    DagEdge Entry;
    Entry.Src = D.EntryNode;
    Entry.Dst = CE.Dst;
    Entry.Kind = DagEdgeKind::LoopEntry;
    Entry.CfgEdgeId = BackId;
    Entry.Cold = Cold;
    D.addEdge(Entry);
  }

  D.computeTopoOrder();
  return D;
}

void BLDag::computeTopoOrder() {
  // Kahn's algorithm over all DAG edges (cold edges included: coldness
  // affects numbering, not acyclic structure).
  std::vector<unsigned> InDegree(static_cast<size_t>(NumNodes), 0);
  for (const DagEdge &E : Edges)
    ++InDegree[static_cast<size_t>(E.Dst)];

  Topo.clear();
  Topo.reserve(static_cast<size_t>(NumNodes));
  std::vector<int> Work;
  // Seed with ENTRY first, then any other zero-in-degree node (isolated
  // or unreachable blocks) in id order.
  Work.push_back(EntryNode);
  for (int V = 0; V < NumNodes; ++V)
    if (V != EntryNode && InDegree[static_cast<size_t>(V)] == 0)
      Work.push_back(V);

  size_t Next = 0;
  while (Next < Work.size()) {
    int V = Work[Next++];
    Topo.push_back(V);
    for (int EId : OutIds[static_cast<size_t>(V)]) {
      int W = Edges[static_cast<size_t>(EId)].Dst;
      if (--InDegree[static_cast<size_t>(W)] == 0)
        Work.push_back(W);
    }
  }
  assert(Topo.size() == static_cast<size_t>(NumNodes) &&
         "DAG contains a cycle; back-edge set incomplete");
}

void BLDag::setFrequencies(const std::vector<int64_t> &CfgEdgeFreq,
                           int64_t Invocations) {
  assert(CfgEdgeFreq.size() == Cfg->numEdges() &&
         "frequency vector does not match CFG");

  // Block execution counts in the *real* CFG (back edges included).
  std::vector<int64_t> BlockExec(Cfg->numBlocks(), 0);
  for (unsigned B = 0; B < Cfg->numBlocks(); ++B) {
    int64_t In = B == 0 ? Invocations : 0;
    for (int EId : Cfg->inEdges(static_cast<BlockId>(B)))
      In += CfgEdgeFreq[static_cast<size_t>(EId)];
    BlockExec[B] = In;
  }

  for (DagEdge &E : Edges) {
    switch (E.Kind) {
    case DagEdgeKind::Real:
      E.Freq = CfgEdgeFreq[static_cast<size_t>(E.CfgEdgeId)];
      break;
    case DagEdgeKind::FnEntry:
      E.Freq = Invocations;
      break;
    case DagEdgeKind::FnExit:
      E.Freq = BlockExec[static_cast<size_t>(E.Src)];
      break;
    case DagEdgeKind::LoopEntry:
    case DagEdgeKind::LoopExit:
      E.Freq = CfgEdgeFreq[static_cast<size_t>(E.CfgEdgeId)];
      break;
    }
  }

  NodeFreq.assign(static_cast<size_t>(NumNodes), 0);
  for (const DagEdge &E : Edges)
    NodeFreq[static_cast<size_t>(E.Dst)] += E.Freq;
  for (int EId : OutIds[static_cast<size_t>(EntryNode)])
    NodeFreq[static_cast<size_t>(EntryNode)] +=
        Edges[static_cast<size_t>(EId)].Freq;
}
