//===- analysis/BLDag.h - Ball-Larus acyclic path DAG ----------*- C++ -*-===//
///
/// \file
/// The DAG that Ball-Larus path profiling numbers and instruments.
/// Construction follows Section 3.1 of Bond & McKinley (CGO 2005):
/// every back edge (tail -> header) is removed and replaced by two dummy
/// edges, ENTRY -> header and tail -> EXIT. We use a *virtual* ENTRY node
/// (so a back edge targeting the entry block is handled uniformly) and a
/// virtual EXIT node (merging multiple returns).
///
/// Node ids: [0, numBlocks) are the function's blocks, numBlocks is EXIT,
/// numBlocks+1 is ENTRY.
///
/// Edge kinds:
///  - Real:      a CFG edge that is not a back edge.
///  - FnEntry:   ENTRY -> block 0 (function invocation).
///  - FnExit:    ret-block -> EXIT (one per Ret terminator).
///  - LoopEntry: ENTRY -> header, dummy for one back edge.
///  - LoopExit:  tail -> EXIT, dummy for the same back edge.
///
/// Cold edges stay in the DAG but are excluded from path numbering; they
/// are where poison instrumentation goes. Disconnected back edges
/// (obvious loops, Sec. 3.2) are excluded entirely: no dummy edges are
/// created, so the loop's iteration boundaries become invisible to the
/// profiler.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_ANALYSIS_BLDAG_H
#define PPP_ANALYSIS_BLDAG_H

#include "analysis/CfgView.h"
#include "analysis/LoopInfo.h"

#include <cstdint>
#include <set>
#include <vector>

namespace ppp {

enum class DagEdgeKind : uint8_t {
  Real,
  FnEntry,
  FnExit,
  LoopEntry,
  LoopExit,
};

/// One DAG edge, carrying the per-edge state of the whole profiling
/// pipeline: predicted frequency, path-numbering value, and the
/// event-counting increment.
struct DagEdge {
  int Id = -1;
  int Src = -1; ///< DAG node id.
  int Dst = -1; ///< DAG node id.
  DagEdgeKind Kind = DagEdgeKind::Real;
  /// Real: the CFG edge. LoopEntry/LoopExit: the broken back edge.
  int CfgEdgeId = -1;
  /// Excluded from path numbering; receives poison instrumentation.
  bool Cold = false;
  /// True if taking this edge consumes a branch decision (source block
  /// has >= 2 successors); used by the branch-flow metric.
  bool IsBranch = false;
  /// Predicted or measured traversal frequency.
  int64_t Freq = 0;
  /// Path numbering value (Figure 2 / Figure 6); meaningful iff !Cold.
  uint64_t Val = 0;
  /// Event-counting increment (may be negative).
  int64_t Inc = 0;
  /// True if the edge is on the event-counting spanning tree (Inc == 0).
  bool OnTree = false;
};

/// The Ball-Larus DAG of one function.
class BLDag {
public:
  struct BuildOptions {
    /// CFG edges to mark cold (excluded from numbering, poisoned).
    const std::set<int> *ColdCfgEdges = nullptr;
    /// Back-edge CFG ids of disconnected (obvious) loops: excluded
    /// entirely, no dummy edges.
    const std::set<int> *DisconnectedBackEdges = nullptr;
  };

  static BLDag build(const CfgView &Cfg, const LoopInfo &LI,
                     const BuildOptions &Opts);

  static BLDag build(const CfgView &Cfg, const LoopInfo &LI) {
    return build(Cfg, LI, BuildOptions{});
  }

  const CfgView &cfg() const { return *Cfg; }

  int numNodes() const { return NumNodes; }
  int exitNode() const { return ExitNode; }
  int entryNode() const { return EntryNode; }
  bool isVirtualNode(int Node) const { return Node >= ExitNode; }

  unsigned numEdges() const { return static_cast<unsigned>(Edges.size()); }

  const DagEdge &edge(int Id) const { return Edges[static_cast<size_t>(Id)]; }
  DagEdge &edge(int Id) { return Edges[static_cast<size_t>(Id)]; }

  const std::vector<DagEdge> &edges() const { return Edges; }
  std::vector<DagEdge> &edges() { return Edges; }

  const std::vector<int> &outEdges(int Node) const {
    return OutIds[static_cast<size_t>(Node)];
  }
  const std::vector<int> &inEdges(int Node) const {
    return InIds[static_cast<size_t>(Node)];
  }

  /// All nodes in a topological order (ENTRY first, EXIT last).
  const std::vector<int> &topoOrder() const { return Topo; }

  /// Assigns edge frequencies from per-CFG-edge counts plus the function
  /// invocation count, and derives node frequencies. Dummy edges take
  /// their back edge's frequency; FnExit edges take the ret block's
  /// total execution count.
  void setFrequencies(const std::vector<int64_t> &CfgEdgeFreq,
                      int64_t Invocations);

  /// Node frequency (sum of incoming DAG edge frequencies; for ENTRY the
  /// sum of outgoing). Valid after setFrequencies().
  int64_t nodeFreq(int Node) const {
    return NodeFreq[static_cast<size_t>(Node)];
  }

  /// Total flow F through the routine = nodeFreq(ENTRY) = number of
  /// DAG path executions.
  int64_t totalFlow() const { return NodeFreq[static_cast<size_t>(EntryNode)]; }

private:
  const CfgView *Cfg = nullptr;
  int NumNodes = 0;
  int ExitNode = 0;
  int EntryNode = 0;
  std::vector<DagEdge> Edges;
  std::vector<std::vector<int>> OutIds;
  std::vector<std::vector<int>> InIds;
  std::vector<int> Topo;
  std::vector<int64_t> NodeFreq;

  void addEdge(DagEdge E);
  void computeTopoOrder();
};

} // namespace ppp

#endif // PPP_ANALYSIS_BLDAG_H
