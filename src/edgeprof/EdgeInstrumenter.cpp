//===- edgeprof/EdgeInstrumenter.cpp - Software edge profiling ----------------===//

#include "edgeprof/EdgeInstrumenter.h"

#include "analysis/LoopInfo.h"
#include "analysis/StaticProfile.h"
#include "pathprof/Lowering.h"
#include "support/Dsu.h"

#include <algorithm>
#include <cassert>

using namespace ppp;

namespace {

/// One edge of the per-function flow circulation.
struct FlowEdge {
  enum class Kind : uint8_t { Invocation, Real, Ret, Virtual };
  Kind K = Kind::Real;
  int Src = -1; ///< Flow-graph node (blocks, then EXIT, then ENTRY).
  int Dst = -1;
  int CfgId = -1;    ///< Real edges: CFG edge id. Ret: ret block id.
  int64_t Weight = 0;
  bool OnTree = false;
  int Slot = -1; ///< Counter slot for chords; -1 for tree edges.
};

/// Builds the circulation graph, picks the spanning tree, and assigns
/// counter slots to the chords.
struct FlowGraph {
  int NumNodes = 0;
  int ExitNode = 0;
  int EntryNode = 0;
  std::vector<FlowEdge> Edges;

  void build(const CfgView &Cfg, const std::vector<int64_t> &Weights,
             int64_t InvocationWeight) {
    unsigned B = Cfg.numBlocks();
    ExitNode = static_cast<int>(B);
    EntryNode = static_cast<int>(B) + 1;
    NumNodes = static_cast<int>(B) + 2;

    FlowEdge Inv;
    Inv.K = FlowEdge::Kind::Invocation;
    Inv.Src = EntryNode;
    Inv.Dst = 0;
    Inv.Weight = InvocationWeight;
    Edges.push_back(Inv);

    for (const CfgEdge &E : Cfg.edges()) {
      FlowEdge F;
      F.K = FlowEdge::Kind::Real;
      F.Src = E.Src;
      F.Dst = E.Dst;
      F.CfgId = E.Id;
      F.Weight = Weights[static_cast<size_t>(E.Id)];
      Edges.push_back(F);
    }

    for (unsigned Blk = 0; Blk < B; ++Blk) {
      if (Cfg.function().block(static_cast<BlockId>(Blk)).terminator().Op !=
          Opcode::Ret)
        continue;
      FlowEdge F;
      F.K = FlowEdge::Kind::Ret;
      F.Src = static_cast<int>(Blk);
      F.Dst = ExitNode;
      F.CfgId = static_cast<int>(Blk);
      // Weight: approximate with the block's inflow.
      int64_t W = Blk == 0 ? InvocationWeight : 0;
      for (int EId : Cfg.inEdges(static_cast<BlockId>(Blk)))
        W += Weights[static_cast<size_t>(EId)];
      F.Weight = W;
      Edges.push_back(F);
    }
    // The virtual EXIT->ENTRY edge closes the circulation; it is always
    // on the tree (encoded by pre-uniting its endpoints below).
  }

  /// Maximum spanning tree; chords get dense counter slots.
  unsigned chooseTreeAndSlots() {
    std::vector<size_t> Order(Edges.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return Edges[A].Weight > Edges[B].Weight;
    });
    Dsu Union(static_cast<size_t>(NumNodes));
    Union.unite(static_cast<size_t>(ExitNode),
                static_cast<size_t>(EntryNode));
    for (size_t I : Order)
      if (Union.unite(static_cast<size_t>(Edges[I].Src),
                      static_cast<size_t>(Edges[I].Dst)))
        Edges[I].OnTree = true;
    unsigned Slots = 0;
    for (FlowEdge &E : Edges)
      if (!E.OnTree)
        E.Slot = static_cast<int>(Slots++);
    return Slots;
  }
};

} // namespace

EdgeInstrumentationResult
ppp::instrumentEdges(const Module &M, const EdgeInstrumenterOptions &Opts) {
  EdgeInstrumentationResult Result;
  Result.Instrumented = M;
  Result.Instrumented.Name = M.Name + ".edgeprof";
  Result.Plans.resize(M.numFunctions());

  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    FuncId F = static_cast<FuncId>(FI);
    FunctionEdgePlan &Plan = Result.Plans[FI];
    Plan.Cfg = std::make_unique<CfgView>(M.function(F));
    const CfgView &Cfg = *Plan.Cfg;

    std::vector<int64_t> Weights;
    int64_t InvWeight;
    if (Opts.Weights) {
      const FunctionEdgeProfile &FP = Opts.Weights->func(F);
      Weights.assign(FP.EdgeFreq.begin(), FP.EdgeFreq.end());
      InvWeight = FP.Invocations;
    } else {
      LoopInfo LI = LoopInfo::compute(Cfg);
      StaticProfile SP = estimateStaticProfile(Cfg, LI);
      Weights = SP.EdgeFreq;
      InvWeight = StaticProfile::Scale;
    }

    FlowGraph G;
    G.build(Cfg, Weights, InvWeight);
    if (Opts.CountEveryEdge) {
      unsigned Slots = 0;
      for (FlowEdge &E : G.Edges)
        E.Slot = static_cast<int>(Slots++);
      Plan.NumSlots = Slots;
    } else {
      Plan.NumSlots = G.chooseTreeAndSlots();
    }

    Plan.SlotOfEdge.assign(Cfg.numEdges(), -1);
    Plan.SlotOfRet.assign(Cfg.numBlocks(), -1);
    SiteOps Sites;
    for (const FlowEdge &E : G.Edges) {
      if (E.Slot < 0)
        continue;
      ProfOp Op{Opcode::ProfCountConst, E.Slot};
      switch (E.K) {
      case FlowEdge::Kind::Invocation:
        Plan.InvocationSlot = E.Slot;
        Sites.EntryOps.push_back(Op);
        break;
      case FlowEdge::Kind::Real:
        Plan.SlotOfEdge[static_cast<size_t>(E.CfgId)] = E.Slot;
        Sites.EdgeOps[E.CfgId].push_back(Op);
        break;
      case FlowEdge::Kind::Ret:
        Plan.SlotOfRet[static_cast<size_t>(E.CfgId)] = E.Slot;
        Sites.RetOps[static_cast<BlockId>(E.CfgId)].push_back(Op);
        break;
      case FlowEdge::Kind::Virtual:
        break;
      }
    }
    lowerInstrumentation(Result.Instrumented.function(F), Cfg, Sites);
    Plan.Instrumented = true;
  }
  return Result;
}

ProfileRuntime EdgeInstrumentationResult::makeRuntime() const {
  ProfileRuntime RT(static_cast<unsigned>(Plans.size()));
  for (size_t I = 0; I < Plans.size(); ++I)
    if (Plans[I].Instrumented)
      RT.setTable(static_cast<FuncId>(I),
                  PathTable::makeArray(std::max(1u, Plans[I].NumSlots)));
  return RT;
}

EdgeProfile ppp::reconstructEdgeProfile(const EdgeInstrumentationResult &IR,
                                        const ProfileRuntime &RT) {
  EdgeProfile Out;
  Out.Funcs.resize(IR.Plans.size());

  for (size_t FI = 0; FI < IR.Plans.size(); ++FI) {
    const FunctionEdgePlan &Plan = IR.Plans[FI];
    const CfgView &Cfg = *Plan.Cfg;
    const PathTable &T = RT.table(static_cast<FuncId>(FI));
    FunctionEdgeProfile &FP = Out.Funcs[FI];
    FP.EdgeFreq.assign(Cfg.numEdges(), 0);

    // Rebuild the circulation with one unknown per tree edge and solve
    // flow conservation by repeated substitution.
    struct Unk {
      int Src, Dst;
      int64_t Value = -1;
      enum class What : uint8_t { Invocation, Real, Ret, Virtual } W;
      int CfgId = -1;
    };
    unsigned B = Cfg.numBlocks();
    int ExitNode = static_cast<int>(B), EntryNode = static_cast<int>(B) + 1;
    int NumNodes = static_cast<int>(B) + 2;

    std::vector<Unk> Unknowns;
    // Known flow per node: +in, -out.
    std::vector<int64_t> Balance(static_cast<size_t>(NumNodes), 0);
    std::vector<std::vector<int>> UnkAt(static_cast<size_t>(NumNodes));

    auto AddKnown = [&](int Src, int Dst, int64_t V) {
      Balance[static_cast<size_t>(Dst)] += V;
      Balance[static_cast<size_t>(Src)] -= V;
    };
    auto AddUnknown = [&](Unk U) {
      int Id = static_cast<int>(Unknowns.size());
      UnkAt[static_cast<size_t>(U.Src)].push_back(Id);
      UnkAt[static_cast<size_t>(U.Dst)].push_back(Id);
      Unknowns.push_back(U);
    };

    // Invocation edge.
    if (Plan.InvocationSlot >= 0) {
      FP.Invocations =
          static_cast<int64_t>(T.countFor(Plan.InvocationSlot));
      AddKnown(EntryNode, 0, FP.Invocations);
    } else {
      AddUnknown({EntryNode, 0, -1, Unk::What::Invocation, -1});
    }
    // Real edges.
    for (const CfgEdge &E : Cfg.edges()) {
      int Slot = Plan.SlotOfEdge[static_cast<size_t>(E.Id)];
      if (Slot >= 0) {
        int64_t V = static_cast<int64_t>(T.countFor(Slot));
        FP.EdgeFreq[static_cast<size_t>(E.Id)] = V;
        AddKnown(E.Src, E.Dst, V);
      } else {
        AddUnknown({E.Src, E.Dst, -1, Unk::What::Real, E.Id});
      }
    }
    // Ret edges.
    for (unsigned Blk = 0; Blk < B; ++Blk) {
      if (Cfg.function().block(static_cast<BlockId>(Blk)).terminator().Op !=
          Opcode::Ret)
        continue;
      int Slot = Plan.SlotOfRet[Blk];
      if (Slot >= 0)
        AddKnown(static_cast<int>(Blk), ExitNode,
                 static_cast<int64_t>(T.countFor(Slot)));
      else
        AddUnknown({static_cast<int>(Blk), ExitNode, -1, Unk::What::Ret,
                    static_cast<int>(Blk)});
    }
    // Virtual EXIT->ENTRY (always on the tree, always unknown).
    AddUnknown({ExitNode, EntryNode, -1, Unk::What::Virtual, -1});

    // Eliminate: a node with exactly one unsolved incident edge fixes
    // that edge's value from its balance.
    std::vector<unsigned> Pending(static_cast<size_t>(NumNodes), 0);
    for (size_t N = 0; N < UnkAt.size(); ++N)
      Pending[N] = static_cast<unsigned>(UnkAt[N].size());
    std::vector<int> Work;
    for (int N = 0; N < NumNodes; ++N)
      if (Pending[static_cast<size_t>(N)] == 1)
        Work.push_back(N);
    while (!Work.empty()) {
      int N = Work.back();
      Work.pop_back();
      if (Pending[static_cast<size_t>(N)] != 1)
        continue;
      int UId = -1;
      for (int Cand : UnkAt[static_cast<size_t>(N)])
        if (Unknowns[static_cast<size_t>(Cand)].Value < 0)
          UId = Cand;
      if (UId < 0)
        continue;
      Unk &U = Unknowns[static_cast<size_t>(UId)];
      // Conservation at N: sum(in) == sum(out).
      int64_t V = U.Dst == N ? -Balance[static_cast<size_t>(N)]
                             : Balance[static_cast<size_t>(N)];
      V = std::max<int64_t>(V, 0); // Dead regions solve to zero.
      U.Value = V;
      AddKnown(U.Src, U.Dst, V);
      for (int Node : {U.Src, U.Dst}) {
        if (--Pending[static_cast<size_t>(Node)] == 1)
          Work.push_back(Node);
      }
    }

    for (const Unk &U : Unknowns) {
      int64_t V = U.Value < 0 ? 0 : U.Value; // Unreached: zero flow.
      switch (U.W) {
      case Unk::What::Invocation:
        FP.Invocations = V;
        break;
      case Unk::What::Real:
        FP.EdgeFreq[static_cast<size_t>(U.CfgId)] = V;
        break;
      case Unk::What::Ret:
      case Unk::What::Virtual:
        break;
      }
    }
  }
  return Out;
}
