//===- edgeprof/EdgeInstrumenter.h - Software edge profiling ---*- C++ -*-===//
///
/// \file
/// Instrumentation-based edge profiling with the classic Knuth/Ball
/// spanning-tree optimization: counters go only on the chords of a
/// maximum spanning tree of the flow graph (with a virtual EXIT->ENTRY
/// edge closing the circulation); tree-edge counts are reconstructed
/// afterwards from flow conservation.
///
/// The paper takes edge profiles as given, collected by sampling or
/// hardware at 0.5-3% overhead (Sec. 2). This module supplies the
/// software alternative a real system might start from, and the
/// `edge_instrumentation` benchmark measures where it lands relative to
/// PP/TPP/PPP under the same cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_EDGEPROF_EDGEINSTRUMENTER_H
#define PPP_EDGEPROF_EDGEINSTRUMENTER_H

#include "analysis/CfgView.h"
#include "interp/ProfileRuntime.h"
#include "ir/Module.h"
#include "profile/EdgeProfile.h"

#include <memory>
#include <vector>

namespace ppp {

struct EdgeInstrumenterOptions {
  /// Place a counter on every edge instead of only on chords
  /// (the naive baseline the spanning tree optimizes away).
  bool CountEveryEdge = false;
  /// Optional profile to weight the spanning tree (hot edges on the
  /// tree); otherwise the static heuristic profile is used.
  const EdgeProfile *Weights = nullptr;
};

/// Per-function counter layout and reconstruction metadata.
struct FunctionEdgePlan {
  bool Instrumented = false;
  unsigned NumSlots = 0;
  /// Counter slot per CFG edge; -1 when the count is derived from flow
  /// conservation (tree edges).
  std::vector<int> SlotOfEdge;
  /// Slot counting invocations (the ENTRY->entry-block edge), or -1.
  int InvocationSlot = -1;
  /// Slot per block with a Ret terminator (block -> EXIT edges), -1 if
  /// derived.
  std::vector<int> SlotOfRet;

  std::unique_ptr<CfgView> Cfg; ///< Over the original function.
};

struct EdgeInstrumentationResult {
  Module Instrumented;
  std::vector<FunctionEdgePlan> Plans;

  /// Fresh zeroed counter tables (array kind, one slot per counter).
  ProfileRuntime makeRuntime() const;
};

/// Instruments a clone of \p M for edge profiling. \p M must outlive
/// the result (plans reference its functions).
EdgeInstrumentationResult
instrumentEdges(const Module &M,
                const EdgeInstrumenterOptions &Opts = EdgeInstrumenterOptions());

/// Recovers the full edge profile from the counters: measured chords
/// plus tree edges solved by flow conservation. Exact for terminating
/// runs.
EdgeProfile reconstructEdgeProfile(const EdgeInstrumentationResult &IR,
                                   const ProfileRuntime &RT);

} // namespace ppp

#endif // PPP_EDGEPROF_EDGEINSTRUMENTER_H
