//===- adapt/AdaptiveController.h - Online re-optimization -----*- C++ -*-===//
///
/// \file
/// The dynamic-optimizer half the paper's profiles exist to feed: a
/// score-and-switch multi-version loop (after tunadb's
/// ProfileGuidedOptimizer and profile-guided multi-version binary
/// rewriting) driven by *live* PPP counters.
///
/// The controller registers itself as the interpreter's EpochHook.
/// Every EpochCalls Call instructions it:
///
///  1. **Samples** the attached ProfileRuntime: per function, the delta
///     of total path counts since the previous epoch is the hotness
///     signal (weighted by function size as a work proxy).
///  2. **Specializes** the hottest not-yet-specialized function: its
///     nonzero counters decode (FunctionPlan::decodePath) into hot
///     paths, whose CFG edges accumulate into a one-function edge
///     profile; a clean-module clone runs the `inline,unroll` pipeline
///     under that advice. Zeros everywhere else focus the inliner's
///     whole-program bloat budget on this one function -- the adaptive
///     advantage over the static pipeline, which spreads the same
///     budget across every phase's hot code at once. The result
///     decodes into a new code version, installed in the interpreter's
///     VersionTable; it goes live at the next call.
///  3. **Scores** the installed version: per-epoch cost deltas (the
///     interpreter's deterministic cost model, so scoring is
///     bit-reproducible) over an evaluation window, against the epoch
///     cost just before the install. A version that regresses the
///     epoch cost beyond RevertThresholdPct is reverted to the base
///     decode and the function is not retried (hysteresis: one
///     candidate in flight at a time, a warm-up epoch before the
///     window opens).
///
/// Installed versions derive from the *clean* module, so a specialized
/// function also sheds its profiling instrumentation -- the counters
/// have served their purpose -- while every run stays bit-identical in
/// ReturnValue/MemChecksum to the clean module (the fuzz battery's
/// checkAdaptive invariant, and tools/adapt_smoke.sh).
///
/// Everything is synchronous and deterministic: the hook runs between
/// instructions on the interpreter's thread, and the controller
/// persists across run() invocations (main itself can only swap at the
/// next run's entry, since it never returns mid-run).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_ADAPT_ADAPTIVECONTROLLER_H
#define PPP_ADAPT_ADAPTIVECONTROLLER_H

#include "interp/Interpreter.h"
#include "opt/Inliner.h"
#include "opt/Unroller.h"
#include "pathprof/Profilers.h"

#include <memory>
#include <vector>

namespace ppp {

namespace trace {
class PathTimingProfile;
} // namespace trace

namespace adapt {

/// What the controller treats as a function's hotness when ranking
/// specialization candidates.
enum class HotnessSource : uint8_t {
  /// Live path-count delta weighted by static function size (a work
  /// proxy). The original behavior; needs nothing beyond the runtime.
  Count,
  /// Count delta weighted by the function's *measured* mean exclusive
  /// cost per path execution, from a timed-trace profiling run
  /// (trace/PathTiming). Separates a cheap-but-frequent function from
  /// a similarly-sized expensive one, which static size cannot.
  PathTime,
};

struct AdaptiveOptions {
  /// Calls between epochs (the controller's sampling cadence).
  uint64_t EpochCalls = 2048;

  /// Minimum path-count delta in one epoch before a function is
  /// considered hot enough to specialize.
  uint64_t MinPathDelta = 32;

  /// Evaluation window (epochs) for a freshly installed version, after
  /// one warm-up epoch that drains in-flight activations of the old
  /// version. One candidate is in flight at a time.
  unsigned EvalEpochs = 2;

  /// Revert when the evaluation window's mean epoch cost exceeds the
  /// pre-install baseline by more than this percentage. The baseline is
  /// the mean of the last BaselineEpochs epoch costs, not a single
  /// epoch: which functions an epoch happens to land on varies, and a
  /// one-epoch baseline turns that mix noise into false reverts.
  double RevertThresholdPct = 5.0;
  unsigned BaselineEpochs = 4;

  /// When no candidate qualifies and nothing is under evaluation for
  /// this many consecutive epochs, the controller doubles its epoch
  /// period (up to BackoffLimit times EpochCalls): once the hot set is
  /// specialized, sampling every table each epoch is pure overhead. A
  /// later phase's new hot function is still caught within one
  /// backed-off epoch. 0 disables backoff.
  unsigned BackoffIdleEpochs = 8;
  unsigned BackoffLimit = 64;

  /// Per-function cap on installed versions (a reverted function is
  /// never retried regardless).
  unsigned MaxVersionsPerFunction = 3;

  /// The function-scoped re-optimization pipeline. The inliner's
  /// CodeBloat budget is measured against the whole program but spent
  /// on one function per version build.
  InlinerOptions InlineOpts;
  UnrollerOptions UnrollOpts;

  /// Candidate-ranking signal. PathTime requires Timing; a function
  /// absent from the timing profile falls back to its static size, so
  /// a partial profile degrades gracefully to Count behavior.
  HotnessSource Hotness = HotnessSource::Count;
  /// Per-path cost attribution from a prior timed-trace run of the
  /// same workload (must outlive the controller). Read-only.
  const trace::PathTimingProfile *Timing = nullptr;
};

struct AdaptStats {
  uint64_t Epochs = 0;
  uint64_t VersionsCompiled = 0;  ///< buildVersion() calls.
  uint64_t VersionsInstalled = 0;
  uint64_t VersionsReverted = 0;
  uint64_t VersionsKept = 0;      ///< Survived their evaluation window.
  uint64_t ColdPathsSkipped = 0;  ///< Poison-region indices in advice.
  uint64_t Backoffs = 0;          ///< Epoch-period doublings.
  uint64_t SwapNanos = 0;         ///< Total build+install wall time.
  uint64_t MaxSwapNanos = 0;      ///< Worst single swap.
  /// The first function ever specialized, -1 while none has been.
  /// Reverts do not clear it: it records the controller's initial
  /// candidate choice (what the hotness source pointed at first), not
  /// the surviving version set.
  FuncId FirstInstall = -1;
};

class AdaptiveController : public EpochHook {
public:
  /// \p Clean is the uninstrumented module \p IR was built from; both
  /// must outlive the controller, as must \p RT (the runtime the
  /// interpreter counts into) and \p Interp (which must execute
  /// IR.Instrumented with \p RT attached). Registers itself as the
  /// interpreter's epoch hook.
  AdaptiveController(const Module &Clean, const InstrumentationResult &IR,
                     ProfileRuntime &RT, Interpreter &Interp,
                     const AdaptiveOptions &Opts = AdaptiveOptions());

  void onEpoch(uint64_t DynInstrs, uint64_t Cost) override;

  /// Tells the controller a new run() is starting, so the first
  /// epoch's cost delta is not computed against the previous run's
  /// counter. (onEpoch also detects the boundary heuristically; this
  /// makes it exact.)
  void noteRunBoundary();

  const AdaptStats &stats() const { return Stats; }
  const AdaptiveOptions &options() const { return Opts; }

  /// Whole-program edge advice containing only \p F's live hot-path
  /// flow (decoded from its counters); every other function is zero.
  /// Exposed for tests.
  EdgeProfile adviceFor(FuncId F);

  /// Flushes the controller's lifetime totals into the obs registry
  /// (adapt.* counters/gauges), including version-table occupancy.
  void flushMetrics() const;

protected:
  /// Compiles a new version of \p F specialized along \p Advice:
  /// clean-module clone, inline then (if the inliner left F untouched;
  /// its advice would be stale on the spliced CFG) unroll, decode.
  /// Virtual so tests can substitute deliberately bad versions and
  /// drive the revert path deterministically.
  virtual std::shared_ptr<const DecodedFunction>
  buildVersion(FuncId F, const EdgeProfile &Advice);

private:
  uint64_t tableTotal(FuncId F) const;
  void sampleDeltas();
  FuncId pickCandidate() const;
  void specialize(FuncId F);

  const Module &Clean;
  const InstrumentationResult &IR;
  ProfileRuntime &RT;
  Interpreter &Interp;
  AdaptiveOptions Opts;
  AdaptStats Stats;

  struct FuncState {
    uint64_t LastTotal = 0; ///< Table total at the previous epoch.
    uint64_t Delta = 0;     ///< This epoch's count delta.
    unsigned Installs = 0;
    bool Specialized = false; ///< Currently running an installed version.
    bool Blocked = false;     ///< Reverted once; never retried.
  };
  std::vector<FuncState> Funcs;

  /// The one candidate under evaluation, if any.
  struct Pending {
    FuncId F = -1;
    uint64_t BaselineEpochCost = 0; ///< Mean epoch cost before install.
    uint64_t WindowCost = 0;        ///< Accumulated over the window.
    unsigned WindowEpochs = 0;
    bool WarmedUp = false; ///< First post-install epoch is discarded.
  };
  Pending Eval;
  bool HasEval = false;

  /// Rolling window of recent clean epoch costs (the revert baseline).
  uint64_t recentMeanCost() const;
  std::vector<uint64_t> Recent;
  unsigned RecentIdx = 0;

  uint64_t CurPeriod = 0;  ///< Current epoch period (calls).
  unsigned IdleEpochs = 0; ///< Consecutive do-nothing epochs.

  uint64_t LastCumCost = 0;   ///< Cost at the previous epoch (this run).
  bool HaveEpochCost = false; ///< A full epoch of this run has elapsed.
};

} // namespace adapt
} // namespace ppp

#endif // PPP_ADAPT_ADAPTIVECONTROLLER_H
