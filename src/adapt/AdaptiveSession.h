//===- adapt/AdaptiveSession.h - One adaptive execution stack --*- C++ -*-===//
///
/// \file
/// Everything one adaptively-optimized execution needs, owned together
/// with stable addresses: the clean module, its PPP instrumentation,
/// the live counter runtime, the interpreter, and the controller wired
/// in as the epoch hook. The bench harness, the smoke tool, the fuzz
/// battery, and the tests all stand up the same stack; this is the one
/// place its ownership and wiring order live.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_ADAPT_ADAPTIVESESSION_H
#define PPP_ADAPT_ADAPTIVESESSION_H

#include "adapt/AdaptiveController.h"

#include <memory>

namespace ppp {
namespace adapt {

class AdaptiveSession {
public:
  /// Builds the full stack for \p M: PPP-instruments a clone of it
  /// under \p Advice (instrumentation advice -- pass the module's edge
  /// profile, or collect one with collectAdvice()), creates the
  /// counter runtime, binds an interpreter to the instrumented module,
  /// and attaches an AdaptiveController with \p AOpts. Heap-only: the
  /// members hold pointers into each other.
  static std::unique_ptr<AdaptiveSession>
  create(const Module &M, const EdgeProfile &Advice,
         const InterpOptions &IO, const AdaptiveOptions &AOpts,
         const ProfilerOptions &POpts = ProfilerOptions::adaptive());

  /// One clean observer run of \p M under \p IO, returning its edge
  /// profile (the standard instrumentation advice).
  static EdgeProfile collectAdvice(const Module &M, const InterpOptions &IO);

  /// Runs the instrumented module once, adaptively. Counters accumulate
  /// across runs (the controller samples deltas); versions persist.
  RunResult run() {
    Controller->noteRunBoundary();
    return Interp->run();
  }

  AdaptiveController &controller() { return *Controller; }
  Interpreter &interp() { return *Interp; }
  ProfileRuntime &runtime() { return *RT; }
  const Module &clean() const { return Clean; }
  const InstrumentationResult &instrumentation() const { return IR; }

  AdaptiveSession(const AdaptiveSession &) = delete;
  AdaptiveSession &operator=(const AdaptiveSession &) = delete;

private:
  AdaptiveSession() = default;

  Module Clean;
  InstrumentationResult IR;
  std::unique_ptr<ProfileRuntime> RT;
  std::unique_ptr<Interpreter> Interp;
  std::unique_ptr<AdaptiveController> Controller;
};

} // namespace adapt
} // namespace ppp

#endif // PPP_ADAPT_ADAPTIVESESSION_H
