//===- adapt/AdaptiveSession.cpp - One adaptive execution stack ------------===//

#include "adapt/AdaptiveSession.h"

#include "profile/Collectors.h"

using namespace ppp;
using namespace ppp::adapt;

EdgeProfile AdaptiveSession::collectAdvice(const Module &M,
                                           const InterpOptions &IO) {
  Interpreter I(M, IO);
  EdgeProfiler EP(M);
  I.addObserver(&EP);
  I.run();
  return EP.takeProfile();
}

std::unique_ptr<AdaptiveSession>
AdaptiveSession::create(const Module &M, const EdgeProfile &Advice,
                        const InterpOptions &IO,
                        const AdaptiveOptions &AOpts,
                        const ProfilerOptions &POpts) {
  std::unique_ptr<AdaptiveSession> S(new AdaptiveSession());
  S->Clean = M;
  S->IR = instrumentModule(S->Clean, Advice, POpts);
  S->RT = std::make_unique<ProfileRuntime>(S->IR.makeRuntime());
  S->Interp = std::make_unique<Interpreter>(S->IR.Instrumented, IO);
  S->Interp->setProfileRuntime(S->RT.get());
  S->Controller = std::make_unique<AdaptiveController>(
      S->Clean, S->IR, *S->RT, *S->Interp, AOpts);
  return S;
}
