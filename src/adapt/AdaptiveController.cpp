//===- adapt/AdaptiveController.cpp - Online re-optimization ---------------===//

#include "adapt/AdaptiveController.h"

#include "analysis/CfgView.h"
#include "obs/Obs.h"
#include "trace/PathTiming.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace ppp;
using namespace ppp::adapt;

AdaptiveController::AdaptiveController(const Module &CleanM,
                                       const InstrumentationResult &IRes,
                                       ProfileRuntime &Runtime,
                                       Interpreter &I,
                                       const AdaptiveOptions &O)
    : Clean(CleanM), IR(IRes), RT(Runtime), Interp(I), Opts(O) {
  assert(Clean.numFunctions() == IR.Plans.size() &&
         "instrumentation result does not match the clean module");
  assert(Opts.EpochCalls > 0 && "epoch cadence must be positive");
  Funcs.resize(Clean.numFunctions());
  Recent.assign(std::max(1u, Opts.BaselineEpochs), 0);
  CurPeriod = Opts.EpochCalls;
  Interp.setEpochHook(this, CurPeriod);
}

uint64_t AdaptiveController::recentMeanCost() const {
  uint64_t Sum = 0, N = 0;
  for (uint64_t C : Recent)
    if (C) {
      Sum += C;
      ++N;
    }
  return N ? Sum / N : 0;
}

uint64_t AdaptiveController::tableTotal(FuncId F) const {
  uint64_t Total = 0;
  RT.table(F).forEach(
      [&Total](int64_t, uint64_t Count) { Total += Count; });
  return Total;
}

void AdaptiveController::sampleDeltas() {
  for (size_t FI = 0; FI < Funcs.size(); ++FI) {
    FuncState &S = Funcs[FI];
    if (S.Specialized || S.Blocked ||
        !IR.Plans[FI].Instrumented) {
      S.Delta = 0;
      continue;
    }
    uint64_t Total = tableTotal(static_cast<FuncId>(FI));
    S.Delta = Total - S.LastTotal;
    S.LastTotal = Total;
  }
}

FuncId AdaptiveController::pickCandidate() const {
  FuncId Best = -1;
  uint64_t BestScore = 0;
  for (size_t FI = 0; FI < Funcs.size(); ++FI) {
    const FuncState &S = Funcs[FI];
    if (S.Specialized || S.Blocked ||
        S.Installs >= Opts.MaxVersionsPerFunction ||
        S.Delta < Opts.MinPathDelta || !IR.Plans[FI].Instrumented)
      continue;
    // Count delta times a per-activation work weight. The default
    // weight is static size, a proxy favoring functions where one
    // activation touches more instructions; with a timed-trace profile
    // attached, the *measured* mean exclusive cost per path execution
    // replaces it, separating cheap-but-frequent functions from
    // expensive ones the size proxy cannot tell apart.
    uint64_t Weight = Clean.function(static_cast<FuncId>(FI)).size();
    if (Opts.Hotness == HotnessSource::PathTime && Opts.Timing) {
      double Mean =
          Opts.Timing->meanFunctionCost(static_cast<FuncId>(FI));
      if (Mean > 0.0)
        Weight = static_cast<uint64_t>(Mean);
    }
    uint64_t Score = S.Delta * Weight;
    if (Score > BestScore) {
      BestScore = Score;
      Best = static_cast<FuncId>(FI);
    }
  }
  return Best;
}

EdgeProfile AdaptiveController::adviceFor(FuncId F) {
  EdgeProfile EP;
  EP.Funcs.resize(Clean.numFunctions());
  // Zeros everywhere: the inliner skips zero-frequency sites and the
  // unroller sees zero-trip loops, so the whole bloat budget lands on
  // F. Vectors are still sized, because both transforms index every
  // function's EdgeFreq unconditionally.
  for (unsigned G = 0; G < Clean.numFunctions(); ++G) {
    CfgView Cfg(Clean.function(static_cast<FuncId>(G)));
    EP.Funcs[G].EdgeFreq.assign(Cfg.numEdges(), 0);
  }

  const FunctionPlan &Plan = IR.Plans[static_cast<size_t>(F)];
  FunctionEdgeProfile &FP = EP.Funcs[static_cast<size_t>(F)];
  RT.table(F).forEach([&](int64_t Index, uint64_t Count) {
    if (Count == 0)
      return;
    if (Index < 0 ||
        static_cast<uint64_t>(Index) >= Plan.NumPaths) {
      // Free-poison region: a cold path executed. By construction it is
      // rare; it contributes nothing to the hot-path advice.
      ++Stats.ColdPathsSkipped;
      return;
    }
    std::optional<PathKey> Key =
        Plan.decodePath(static_cast<uint64_t>(Index));
    if (!Key)
      return;
    int64_t C = static_cast<int64_t>(Count);
    for (int E : Key->EdgeIds)
      FP.EdgeFreq[static_cast<size_t>(E)] += C;
    // The terminating back edge was traversed once per execution; the
    // *starting* back edge is the previous path's terminator and is
    // already counted there.
    if (Key->TermCfgEdgeId >= 0)
      FP.EdgeFreq[static_cast<size_t>(Key->TermCfgEdgeId)] += C;
    if (Key->StartCfgEdgeId < 0)
      FP.Invocations += C;
  });
  return EP;
}

std::shared_ptr<const DecodedFunction>
AdaptiveController::buildVersion(FuncId F, const EdgeProfile &Advice) {
  // Whole-module clone: the inliner needs callee bodies, and both
  // transforms only touch functions with nonzero advice -- i.e. F.
  Module Work = Clean;
  InlineStats IS = runInliner(Work, Advice, Opts.InlineOpts);
  // The unroller's advice is in clean-CFG edge ids; once the inliner
  // spliced into F they are stale (and undersized), so inline and
  // unroll are alternatives per version, inlining first.
  if (!IS.ModifiedFunctions.count(F))
    runUnroller(Work, Advice, Opts.UnrollOpts);
  return std::make_shared<DecodedFunction>(decodeFunction(
      Work.function(F), Interp.versions().costs(), /*HashedTable=*/false));
}

void AdaptiveController::specialize(FuncId F) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();
  EdgeProfile Advice = adviceFor(F);
  std::shared_ptr<const DecodedFunction> V = buildVersion(F, Advice);
  ++Stats.VersionsCompiled;
  if (!V)
    return;
  Interp.versions().install(F, std::move(V));
  uint64_t Ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           T0)
          .count());
  Stats.SwapNanos += Ns;
  Stats.MaxSwapNanos = std::max(Stats.MaxSwapNanos, Ns);
  ++Stats.VersionsInstalled;
  if (Stats.FirstInstall < 0)
    Stats.FirstInstall = F;
  FuncState &S = Funcs[static_cast<size_t>(F)];
  ++S.Installs;
  S.Specialized = true;
}

void AdaptiveController::noteRunBoundary() {
  LastCumCost = 0;
  HaveEpochCost = false;
}

void AdaptiveController::onEpoch(uint64_t DynInstrs, uint64_t Cost) {
  (void)DynInstrs;
  ++Stats.Epochs;
  // A period change inside onEpoch only takes effect at the next epoch
  // (the interpreter re-arms its countdown before calling the hook), so
  // the epoch that just finished ran at the current period.
  uint64_t FinishedPeriod = CurPeriod;

  // Cost is cumulative per run(); a drop means a new run started and
  // this epoch's delta would mix two runs. (Benchmarks should also call
  // noteRunBoundary() between runs; this is the backstop.)
  bool CleanDelta = true;
  if (Cost < LastCumCost) {
    LastCumCost = 0;
    HaveEpochCost = false;
    CleanDelta = false;
  }
  uint64_t EpochCost = Cost - LastCumCost;
  LastCumCost = Cost;
  // Normalized to the base cadence, so epochs measured at a backed-off
  // period stay comparable to base-period baselines.
  uint64_t NormCost = EpochCost * Opts.EpochCalls / FinishedPeriod;

  sampleDeltas();

  bool Acted = false;
  if (HasEval) {
    Acted = true;
    // Score the in-flight candidate. The first epoch after the install
    // is warm-up (in-flight activations of the old version drain).
    if (!Eval.WarmedUp) {
      Eval.WarmedUp = true;
    } else if (CleanDelta) {
      Eval.WindowCost += NormCost;
      ++Eval.WindowEpochs;
      if (Eval.WindowEpochs >= Opts.EvalEpochs) {
        double Mean = static_cast<double>(Eval.WindowCost) /
                      static_cast<double>(Eval.WindowEpochs);
        double Limit = static_cast<double>(Eval.BaselineEpochCost) *
                       (1.0 + Opts.RevertThresholdPct / 100.0);
        FuncState &S = Funcs[static_cast<size_t>(Eval.F)];
        if (Eval.BaselineEpochCost > 0 && Mean > Limit) {
          Interp.versions().revert(Eval.F);
          S.Specialized = false;
          S.Blocked = true; // A losing version is not retried.
          ++Stats.VersionsReverted;
        } else {
          ++Stats.VersionsKept;
        }
        HasEval = false;
      }
    }
  } else if (CleanDelta && HaveEpochCost) {
    // Hysteresis: one candidate at a time, and only with a trustworthy
    // pre-install baseline (the recent mean; a single epoch's cost
    // varies with which functions it happened to land on).
    FuncId F = pickCandidate();
    if (F >= 0) {
      specialize(F);
      if (Funcs[static_cast<size_t>(F)].Specialized) {
        Eval = Pending();
        Eval.F = F;
        Eval.BaselineEpochCost = recentMeanCost();
        if (!Eval.BaselineEpochCost)
          Eval.BaselineEpochCost = NormCost;
        HasEval = true;
      }
      Acted = true;
    }
  }

  if (CleanDelta) {
    HaveEpochCost = true;
    Recent[RecentIdx] = NormCost;
    RecentIdx = (RecentIdx + 1) % static_cast<unsigned>(Recent.size());
  }

  // Idle backoff: nothing to specialize and nothing under evaluation
  // means every table walk above was pure overhead; stretch the period.
  if (Acted) {
    IdleEpochs = 0;
  } else if (Opts.BackoffIdleEpochs &&
             ++IdleEpochs >= Opts.BackoffIdleEpochs) {
    IdleEpochs = 0;
    if (CurPeriod < Opts.EpochCalls * Opts.BackoffLimit) {
      CurPeriod *= 2;
      Interp.setEpochHook(this, CurPeriod);
      ++Stats.Backoffs;
    }
  }
}

void AdaptiveController::flushMetrics() const {
  obs::counter("adapt.epochs").inc(Stats.Epochs);
  obs::counter("adapt.versions.compiled").inc(Stats.VersionsCompiled);
  obs::counter("adapt.versions.installed").inc(Stats.VersionsInstalled);
  obs::counter("adapt.versions.reverted").inc(Stats.VersionsReverted);
  obs::counter("adapt.versions.kept").inc(Stats.VersionsKept);
  obs::counter("adapt.advice.cold_paths").inc(Stats.ColdPathsSkipped);
  obs::counter("adapt.backoffs").inc(Stats.Backoffs);
  obs::counter("adapt.swap.ns_total").inc(Stats.SwapNanos);
  obs::gauge("adapt.swap.ns_max")
      .set(static_cast<double>(Stats.MaxSwapNanos));
  const VersionTable &VT = Interp.versions();
  obs::gauge("adapt.table.functions")
      .set(static_cast<double>(VT.numFunctions()));
  obs::gauge("adapt.table.decoded")
      .set(static_cast<double>(VT.decodedFunctions()));
  uint64_t Live = 0;
  for (size_t FI = 0; FI < VT.numFunctions(); ++FI)
    if (VT.currentVersion(static_cast<FuncId>(FI)) > 0)
      ++Live;
  obs::gauge("adapt.table.live_versions").set(static_cast<double>(Live));
}
