//===- opt/Unroller.h - Profile-guided loop unrolling ----------*- C++ -*-===//
///
/// \file
/// Inner-loop unrolling (Sec. 7.3): innermost natural loops with an
/// average trip count of at least 8 are unrolled by a factor of 4 (2 if
/// 4 would exceed the 256-instruction body cap; otherwise not at all).
///
/// Unrolling replicates the body, chaining each copy's back edge to the
/// next copy and the last back to the original header; every copy keeps
/// its exit conditions, so semantics are preserved for any trip count.
/// Ball-Larus paths then span several original iterations, reproducing
/// Table 1's jump in per-path branches and instructions.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_OPT_UNROLLER_H
#define PPP_OPT_UNROLLER_H

#include "ir/Module.h"
#include "profile/EdgeProfile.h"

#include <set>

namespace ppp {

struct UnrollerOptions {
  unsigned Factor = 4;
  double MinAvgTrip = 8.0;
  unsigned MaxBodyInstrs = 256; ///< Cap on the unrolled body size.
};

struct UnrollStats {
  unsigned LoopsUnrolled = 0;
  unsigned LoopsConsidered = 0;
  /// Table 1's "average unroll factor": per-loop factors (1 when not
  /// unrolled) weighted by dynamic iterations (back-edge frequency).
  double avgDynUnrollFactor() const {
    return WeightTotal == 0 ? 1.0
                            : WeightedFactor /
                                  static_cast<double>(WeightTotal);
  }

  double WeightedFactor = 0;
  int64_t WeightTotal = 0;

  /// Functions with at least one unrolled loop -- the functions a pass
  /// manager must invalidate. Not persisted by the prep cache.
  std::set<FuncId> ModifiedFunctions;
};

/// Unrolls qualifying loops of \p M in place. \p EP must profile \p M in
/// its pre-unrolling form (stale afterwards; re-profile).
UnrollStats runUnroller(Module &M, const EdgeProfile &EP,
                        const UnrollerOptions &Opts = UnrollerOptions());

} // namespace ppp

#endif // PPP_OPT_UNROLLER_H
