//===- opt/TraceFormation.h - Superblock/trace formation -------*- C++ -*-===//
///
/// \file
/// The consumer side of path profiling: superblock-style trace
/// formation by tail duplication. Given a hot block sequence, every
/// side-entered block on the sequence is duplicated into its on-path
/// predecessor, so the hot path runs through straight-line private code
/// while all other paths keep using the original blocks. Semantics are
/// always preserved; the payoff (removed unconditional jumps) depends
/// on how often the *whole* sequence actually executes.
///
/// Two drivers expose the paper's core claim (Sec. 1-2) as an
/// experiment:
///  - formTracesFromPathProfile: seed traces with measured hot *paths*
///    (what PPP provides);
///  - formTracesFromEdgeProfile: seed traces by greedily following the
///    hottest out-edges (the best an edge profile alone supports, per
///    Ball-Mataga-Sagiv this often predicts the wrong path).
///
/// Both are valid optimizations; the path-guided one wins exactly when
/// edge profiles mispredict paths.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_OPT_TRACEFORMATION_H
#define PPP_OPT_TRACEFORMATION_H

#include "ir/Module.h"
#include "profile/EdgeProfile.h"
#include "profile/PathProfile.h"

#include <vector>

namespace ppp {

struct TraceOptions {
  /// Ignore paths/seeds executing fewer times than this.
  uint64_t MinFreq = 100;
  /// Ignore paths shorter than this many interior edges.
  unsigned MinPathEdges = 2;
  /// Stop growing an edge-greedy trace when the next edge carries less
  /// than this fraction of its source block's flow.
  double GreedyMinEdgeShare = 0.5;
  /// Cap on blocks duplicated per function (code growth control).
  unsigned MaxDuplicatedPerFunction = 64;
};

struct TraceStats {
  unsigned Traces = 0;
  unsigned BlocksDuplicated = 0;
};

/// Tail-duplicates along \p HotBlocks inside \p F. Only unconditional
/// (Br) hops into side-entered blocks are merged; conditional hops
/// continue the trace at the original block. Returns the number of
/// blocks duplicated. Appends blocks only; existing ids stay valid.
unsigned formTrace(Function &F, const std::vector<BlockId> &HotBlocks,
                   unsigned MaxDuplicated);

/// Forms one trace per function from its hottest profiled path.
TraceStats formTracesFromPathProfile(Module &M, const PathProfile &Profile,
                                     const TraceOptions &Opts = TraceOptions());

/// Edge-profile baseline: grows each function's trace from its hottest
/// block by repeatedly taking the hottest outgoing edge.
TraceStats formTracesFromEdgeProfile(Module &M, const EdgeProfile &EP,
                                     const TraceOptions &Opts = TraceOptions());

} // namespace ppp

#endif // PPP_OPT_TRACEFORMATION_H
