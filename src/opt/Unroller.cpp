//===- opt/Unroller.cpp - Profile-guided loop unrolling ----------------------===//

#include "opt/Unroller.h"

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <map>

using namespace ppp;

namespace {

/// Replicates the body of one single-back-edge innermost loop
/// \p Factor-fold inside \p F. Appends blocks only.
void unrollLoop(Function &F, const Loop &L, int BackEdgeId,
                const CfgView &Cfg, unsigned Factor) {
  const CfgEdge &Back = Cfg.edge(BackEdgeId);
  BlockId Header = L.Header;
  BlockId Tail = Back.Src;
  unsigned TailSuccIdx = Back.SuccIdx;

  // Block id mapping per copy; copies reuse the same registers (the
  // replayed computation is identical, so no renaming is needed).
  std::map<BlockId, BlockId> Prev; // Body block -> id in previous copy.
  for (BlockId B : L.Blocks)
    Prev[B] = B;

  for (unsigned Copy = 1; Copy < Factor; ++Copy) {
    std::map<BlockId, BlockId> Cur;
    BlockId Base = static_cast<BlockId>(F.Blocks.size());
    for (size_t I = 0; I < L.Blocks.size(); ++I)
      Cur[L.Blocks[I]] = Base + static_cast<BlockId>(I);
    for (BlockId B : L.Blocks) {
      // Clone from the *original* body (copy first: push_back of a
      // reference into the growing vector would dangle on reallocation).
      BasicBlock Clone = F.block(B);
      F.Blocks.push_back(std::move(Clone));
      Instr &T = F.Blocks.back().terminator();
      for (BlockId &Tgt : T.Targets) {
        auto It = Cur.find(Tgt);
        if (It != Cur.end())
          Tgt = It->second; // Interior edge: stay within this copy.
        // Exit edges keep their outside targets.
      }
    }
    // Previous copy's back edge now falls through into this copy's
    // header instead of the original header.
    BlockId PrevTail = Prev[Tail];
    F.block(PrevTail).terminator().Targets[TailSuccIdx] = Cur[Header];
    // This copy's cloned back edge currently targets Cur[Header] (the
    // clone loop above remapped it); retarget it to the original header
    // so the final copy closes the cycle. It will be redirected again
    // if another copy follows.
    F.block(Cur[Tail]).terminator().Targets[TailSuccIdx] = Header;
    Prev = std::move(Cur);
  }
}

} // namespace

UnrollStats ppp::runUnroller(Module &M, const EdgeProfile &EP,
                             const UnrollerOptions &Opts) {
  UnrollStats Stats;
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    Function &F = M.function(static_cast<FuncId>(FI));
    const FunctionEdgeProfile &FP = EP.func(static_cast<FuncId>(FI));
    CfgView Cfg(F);
    LoopInfo LI = LoopInfo::compute(Cfg);
    const std::vector<Loop> &Loops = LI.loops();

    // Select first (analysis goes stale as we mutate), then transform.
    struct Plan {
      const Loop *L;
      int BackEdgeId;
      unsigned Factor;
    };
    std::vector<Plan> Plans;
    std::vector<bool> Claimed(Cfg.numBlocks(), false);
    for (size_t I = 0; I < Loops.size(); ++I) {
      const Loop &L = Loops[I];
      int64_t Iters = 0;
      for (int EId : L.BackEdgeIds)
        Iters += FP.EdgeFreq[static_cast<size_t>(EId)];

      unsigned Factor = 1;
      if (L.Natural && L.isInnermost(Loops, I) &&
          L.BackEdgeIds.size() == 1) {
        ++Stats.LoopsConsidered;
        int64_t Entries = L.Header == 0 ? FP.Invocations : 0;
        for (int EId : L.EntryEdgeIds)
          Entries += FP.EdgeFreq[static_cast<size_t>(EId)];
        double AvgTrip =
            Entries <= 0 ? 0.0
                         : static_cast<double>(
                               FP.blockFreq(Cfg, L.Header)) /
                               static_cast<double>(Entries);
        unsigned BodySize = 0;
        for (BlockId B : L.Blocks)
          BodySize += static_cast<unsigned>(F.block(B).Instrs.size());
        bool Overlaps = false;
        for (BlockId B : L.Blocks)
          if (Claimed[static_cast<size_t>(B)])
            Overlaps = true;
        if (AvgTrip >= Opts.MinAvgTrip && !Overlaps) {
          for (unsigned Cand : {Opts.Factor, Opts.Factor / 2}) {
            if (Cand >= 2 && BodySize * Cand <= Opts.MaxBodyInstrs) {
              Factor = Cand;
              break;
            }
          }
        }
        if (Factor > 1) {
          for (BlockId B : L.Blocks)
            Claimed[static_cast<size_t>(B)] = true;
          Plans.push_back({&L, L.BackEdgeIds[0], Factor});
        }
      }
      Stats.WeightedFactor +=
          static_cast<double>(Factor) * static_cast<double>(Iters);
      Stats.WeightTotal += Iters;
    }

    for (const Plan &P : Plans) {
      unrollLoop(F, *P.L, P.BackEdgeId, Cfg, P.Factor);
      ++Stats.LoopsUnrolled;
      Stats.ModifiedFunctions.insert(static_cast<FuncId>(FI));
    }
  }
  return Stats;
}
