//===- opt/Inliner.cpp - Profile-guided inlining -----------------------------===//

#include "opt/Inliner.h"

#include "analysis/CfgView.h"

#include <algorithm>
#include <cassert>

using namespace ppp;

namespace {

struct CallSite {
  FuncId Caller = -1;
  FuncId Callee = -1;
  int64_t SiteId = 0;  ///< Stamped into the Call's Imm to survive edits.
  int64_t Freq = 0;    ///< Executions of the containing block.
  double Priority = 0; ///< Freq / callee size.
};

/// Finds the stamped call site; returns (block, instr index) or false.
bool locateSite(const Function &F, int64_t SiteId, BlockId &B, size_t &I) {
  for (size_t BI = 0; BI < F.Blocks.size(); ++BI)
    for (size_t II = 0; II < F.Blocks[BI].Instrs.size(); ++II) {
      const Instr &Ins = F.Blocks[BI].Instrs[II];
      if (Ins.Op == Opcode::Call && Ins.Imm == SiteId) {
        B = static_cast<BlockId>(BI);
        I = II;
        return true;
      }
    }
  return false;
}

/// Registers read by \p I, via \p Fn(reg).
template <typename FnT> void forEachRead(const Instr &I, FnT Fn) {
  switch (I.Op) {
  case Opcode::Const:
    break;
  case Opcode::Mov:
  case Opcode::AddImm:
  case Opcode::MulImm:
  case Opcode::Load:
    Fn(I.B);
    break;
  case Opcode::Store:
    Fn(I.A);
    Fn(I.B);
    break;
  case Opcode::Call:
    for (unsigned AI = 0; AI < I.NumArgs; ++AI)
      Fn(I.Args[AI]);
    break;
  case Opcode::Br:
    break;
  case Opcode::CondBr:
  case Opcode::Switch:
  case Opcode::Ret:
    Fn(I.A);
    break;
  case Opcode::ProfSet:
  case Opcode::ProfAdd:
  case Opcode::ProfCountIdx:
  case Opcode::ProfCountConst:
  case Opcode::ProfCheckedCountIdx:
    break;
  default: // All binary arithmetic/compare forms.
    Fn(I.B);
    Fn(I.C);
    break;
  }
}

/// The register \p I writes, or -1.
RegId writtenReg(const Instr &I) {
  switch (I.Op) {
  case Opcode::Store:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Switch:
  case Opcode::Ret:
  case Opcode::ProfSet:
  case Opcode::ProfAdd:
  case Opcode::ProfCountIdx:
  case Opcode::ProfCountConst:
  case Opcode::ProfCheckedCountIdx:
    return -1;
  default:
    return I.A;
  }
}

/// Definite-assignment analysis: registers that may be read before any
/// write on some path from entry. Fresh frames zero registers, so an
/// inlined body must zero exactly these to preserve semantics when the
/// inlined code re-executes inside a caller loop.
std::vector<RegId> maybeReadBeforeWrite(const Function &F) {
  size_t NR = F.NumRegs;
  size_t NB = F.Blocks.size();
  // W[b]: definitely-written at block exit; start at "all" (top).
  std::vector<std::vector<bool>> WOut(NB, std::vector<bool>(NR, true));
  std::vector<bool> Entry(NR, false);
  for (unsigned PI = 0; PI < F.NumParams; ++PI)
    Entry[PI] = true;

  // Predecessors.
  std::vector<std::vector<BlockId>> Preds(NB);
  for (size_t BI = 0; BI < NB; ++BI)
    for (BlockId T : F.Blocks[BI].terminator().Targets)
      Preds[static_cast<size_t>(T)].push_back(static_cast<BlockId>(BI));

  auto BlockIn = [&](size_t BI) {
    std::vector<bool> In = BI == 0 ? Entry : std::vector<bool>(NR, true);
    if (BI != 0 && Preds[BI].empty())
      In.assign(NR, false); // Unreachable: be conservative.
    for (BlockId P : Preds[BI])
      for (size_t R = 0; R < NR; ++R)
        In[R] = In[R] && WOut[static_cast<size_t>(P)][R];
    return In;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t BI = 0; BI < NB; ++BI) {
      std::vector<bool> Cur = BlockIn(BI);
      for (const Instr &I : F.Blocks[BI].Instrs)
        if (RegId W = writtenReg(I); W >= 0)
          Cur[static_cast<size_t>(W)] = true;
      if (Cur != WOut[BI]) {
        WOut[BI] = std::move(Cur);
        Changed = true;
      }
    }
  }

  std::vector<bool> Unsafe(NR, false);
  for (size_t BI = 0; BI < NB; ++BI) {
    std::vector<bool> Cur = BlockIn(BI);
    for (const Instr &I : F.Blocks[BI].Instrs) {
      forEachRead(I, [&](RegId R) {
        if (!Cur[static_cast<size_t>(R)])
          Unsafe[static_cast<size_t>(R)] = true;
      });
      if (RegId W = writtenReg(I); W >= 0)
        Cur[static_cast<size_t>(W)] = true;
    }
  }
  std::vector<RegId> Out;
  for (size_t R = 0; R < NR; ++R)
    if (Unsafe[R])
      Out.push_back(static_cast<RegId>(R));
  return Out;
}

/// Splices \p Callee into \p Caller at the stamped site. Appends blocks
/// only, so existing block ids stay valid.
void inlineSite(Function &Caller, const Function &Callee, BlockId B,
                size_t I) {
  const Instr Call = Caller.Blocks[static_cast<size_t>(B)].Instrs[I];
  assert(Call.Op == Opcode::Call);

  RegId RegOffset = static_cast<RegId>(Caller.NumRegs);
  Caller.NumRegs += Callee.NumRegs;
  BlockId BlockOffset = static_cast<BlockId>(Caller.Blocks.size());

  // Continuation: everything after the call moves to a fresh block.
  BlockId ContId =
      static_cast<BlockId>(Caller.Blocks.size() + Callee.Blocks.size());

  // Clone callee blocks, remapping registers and targets; rets become
  // result moves plus jumps to the continuation.
  for (const BasicBlock &CB : Callee.Blocks) {
    Caller.Blocks.emplace_back();
    BasicBlock &NB = Caller.Blocks.back();
    for (const Instr &CI : CB.Instrs) {
      if (CI.Op == Opcode::Ret) {
        Instr Mov;
        Mov.Op = Opcode::Mov;
        Mov.A = Call.A;
        Mov.B = CI.A + RegOffset;
        NB.Instrs.push_back(std::move(Mov));
        Instr Jump;
        Jump.Op = Opcode::Br;
        Jump.Targets = {ContId};
        NB.Instrs.push_back(std::move(Jump));
        continue;
      }
      Instr NI = CI;
      if (NI.A >= 0)
        NI.A += RegOffset;
      if (NI.B >= 0)
        NI.B += RegOffset;
      if (NI.C >= 0)
        NI.C += RegOffset;
      for (unsigned AI = 0; AI < NI.NumArgs; ++AI)
        NI.Args[AI] += RegOffset;
      for (BlockId &T : NI.Targets)
        T += BlockOffset;
      NB.Instrs.push_back(std::move(NI));
    }
  }

  // Continuation block: the tail of B after the call.
  Caller.Blocks.emplace_back();
  {
    BasicBlock &Cont = Caller.Blocks.back();
    BasicBlock &Site = Caller.Blocks[static_cast<size_t>(B)];
    Cont.Instrs.assign(Site.Instrs.begin() + static_cast<long>(I) + 1,
                       Site.Instrs.end());
    Site.Instrs.erase(Site.Instrs.begin() + static_cast<long>(I),
                      Site.Instrs.end());
    // Fresh activations zero their registers; re-zero the clone's
    // maybe-read-before-written registers so re-execution inside a
    // caller loop behaves like a fresh call.
    for (RegId R : maybeReadBeforeWrite(Callee)) {
      Instr Zero;
      Zero.Op = Opcode::Const;
      Zero.A = R + RegOffset;
      Zero.Imm = 0;
      Site.Instrs.push_back(std::move(Zero));
    }
    // Replace the call with parameter moves and a jump into the clone.
    for (unsigned AI = 0; AI < Call.NumArgs; ++AI) {
      Instr Mov;
      Mov.Op = Opcode::Mov;
      Mov.A = static_cast<RegId>(AI) + RegOffset;
      Mov.B = Call.Args[AI];
      Site.Instrs.push_back(std::move(Mov));
    }
    Instr Jump;
    Jump.Op = Opcode::Br;
    Jump.Targets = {BlockOffset}; // Callee entry clone.
    Site.Instrs.push_back(std::move(Jump));
  }
}

} // namespace

InlineStats ppp::runInliner(Module &M, const EdgeProfile &EP,
                            const InlinerOptions &Opts) {
  InlineStats Stats;

  // Stamp call sites and gather candidates.
  std::vector<CallSite> Sites;
  int64_t NextSiteId = 1;
  unsigned TotalSize = 0;
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    Function &F = M.function(static_cast<FuncId>(FI));
    TotalSize += F.size();
    CfgView Cfg(F);
    const FunctionEdgeProfile &FP = EP.func(static_cast<FuncId>(FI));
    for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
      int64_t BlockFreq = FP.blockFreq(Cfg, static_cast<BlockId>(BI));
      for (Instr &I : F.Blocks[BI].Instrs) {
        if (I.Op != Opcode::Call)
          continue;
        I.Imm = NextSiteId;
        Stats.DynCallsTotal += BlockFreq;
        CallSite S;
        S.Caller = static_cast<FuncId>(FI);
        S.Callee = I.Callee;
        S.SiteId = NextSiteId;
        S.Freq = BlockFreq;
        ++NextSiteId;
        if (S.Callee == S.Caller)
          continue; // Recursive.
        unsigned CalleeSize = M.function(S.Callee).size();
        if (CalleeSize > Opts.MaxCalleeSize || S.Freq <= 0)
          continue;
        S.Priority =
            static_cast<double>(S.Freq) / static_cast<double>(CalleeSize);
        Sites.push_back(S);
      }
    }
  }
  Stats.SitesConsidered = static_cast<unsigned>(Sites.size());

  std::stable_sort(Sites.begin(), Sites.end(),
                   [](const CallSite &A, const CallSite &B) {
                     if (A.Priority != B.Priority)
                       return A.Priority > B.Priority;
                     return A.SiteId < B.SiteId;
                   });

  uint64_t Budget = static_cast<uint64_t>(
      static_cast<double>(TotalSize) * (1.0 + Opts.CodeBloat));
  uint64_t CurrentSize = TotalSize;

  for (const CallSite &S : Sites) {
    if (Stats.SitesInlined >= Opts.MaxSites)
      break;
    const Function &Callee = M.function(S.Callee);
    // Growth: the callee body plus parameter moves, minus the call.
    uint64_t Growth = Callee.size() + Callee.NumParams;
    if (CurrentSize + Growth > Budget)
      continue;
    Function &Caller = M.function(S.Caller);
    BlockId B;
    size_t I;
    if (!locateSite(Caller, S.SiteId, B, I))
      continue; // Site disappeared (was inside an inlined region? no --
                // inlining only grows callers; defensive).
    inlineSite(Caller, Callee, B, I);
    CurrentSize += Growth;
    ++Stats.SitesInlined;
    Stats.DynCallsInlined += S.Freq;
    Stats.ModifiedFunctions.insert(S.Caller);
  }

  // Clear the site stamps (Imm is meaningless for calls otherwise).
  for (Function &F : M.Functions)
    for (BasicBlock &BB : F.Blocks)
      for (Instr &I : BB.Instrs)
        if (I.Op == Opcode::Call)
          I.Imm = 0;
  return Stats;
}
