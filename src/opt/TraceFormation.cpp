//===- opt/TraceFormation.cpp - Superblock/trace formation -------------------===//

#include "opt/TraceFormation.h"

#include "analysis/CfgView.h"
#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cassert>

using namespace ppp;

unsigned ppp::formTrace(Function &F, const std::vector<BlockId> &HotBlocks,
                        unsigned MaxDuplicated) {
  if (HotBlocks.size() < 2)
    return 0;
  unsigned Duplicated = 0;
  // The block whose tail currently ends the trace (the hot path's code
  // accumulates here as side-entered successors get spliced in).
  BlockId Residence = HotBlocks.front();
  for (size_t I = 0; I + 1 < HotBlocks.size(); ++I) {
    if (Duplicated >= MaxDuplicated)
      break;
    BlockId V = HotBlocks[I + 1];
    BasicBlock &Res = F.block(Residence);
    const Instr &Term = Res.terminator();
    if (Term.Op != Opcode::Br || Term.Targets[0] != V) {
      // Conditional hop (or retargeted already): the trace continues at
      // the original block.
      Residence = V;
      continue;
    }
    unsigned Preds = 0;
    for (const BasicBlock &BB : F.Blocks)
      for (BlockId T : BB.terminator().Targets)
        Preds += T == V;
    if (Preds <= 1) {
      // Already private: merging would only delete the jump; keep the
      // block structure and move on (the interpreter charges the Br,
      // so splice it anyway for the cost win).
      BasicBlock Copy = F.block(V);
      if (V == Residence)
        break; // Self-loop; cannot splice into itself.
      Res.Instrs.pop_back();
      Res.Instrs.insert(Res.Instrs.end(), Copy.Instrs.begin(),
                        Copy.Instrs.end());
      // V is now dead code (kept; it simply never executes).
      ++Duplicated;
      continue;
    }
    // Tail-duplicate V into the residence block; V remains for its
    // other predecessors. Registers need no renaming: same frame.
    if (V == Residence)
      break;
    BasicBlock Copy = F.block(V);
    Res.Instrs.pop_back();
    Res.Instrs.insert(Res.Instrs.end(), Copy.Instrs.begin(),
                      Copy.Instrs.end());
    ++Duplicated;
  }
  return Duplicated;
}

TraceStats
ppp::formTracesFromPathProfile(Module &M, const PathProfile &Profile,
                               const TraceOptions &Opts) {
  TraceStats Stats;
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    if (FI >= Profile.Funcs.size())
      break;
    const FunctionPathProfile &FP = Profile.Funcs[FI];
    const PathRecord *Hot = nullptr;
    for (const PathRecord &R : FP.Paths)
      if (!Hot ||
          R.flow(FlowMetric::Branch) > Hot->flow(FlowMetric::Branch))
        Hot = &R;
    if (!Hot || Hot->Freq < Opts.MinFreq ||
        Hot->Key.EdgeIds.size() < Opts.MinPathEdges)
      continue;
    CfgView Cfg(M.function(static_cast<FuncId>(FI)));
    unsigned D =
        formTrace(M.function(static_cast<FuncId>(FI)),
                  Hot->Key.blocks(Cfg), Opts.MaxDuplicatedPerFunction);
    if (D > 0) {
      ++Stats.Traces;
      Stats.BlocksDuplicated += D;
    }
  }
  return Stats;
}

TraceStats ppp::formTracesFromEdgeProfile(Module &M, const EdgeProfile &EP,
                                          const TraceOptions &Opts) {
  TraceStats Stats;
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    Function &F = M.function(static_cast<FuncId>(FI));
    CfgView Cfg(F);
    LoopInfo LI = LoopInfo::compute(Cfg);
    const FunctionEdgeProfile &FP = EP.func(static_cast<FuncId>(FI));

    // Seed: the hottest block (ties to the lowest id).
    BlockId Seed = -1;
    int64_t SeedFreq = 0;
    for (unsigned B = 0; B < Cfg.numBlocks(); ++B) {
      int64_t Freq = FP.blockFreq(Cfg, static_cast<BlockId>(B));
      if (Freq > SeedFreq) {
        SeedFreq = Freq;
        Seed = static_cast<BlockId>(B);
      }
    }
    if (Seed < 0 || SeedFreq < static_cast<int64_t>(Opts.MinFreq))
      continue;

    // Grow: repeatedly take the hottest out-edge, stopping at back
    // edges (a Ball-Larus path would too), at revisits, or when the
    // hottest edge stops dominating its block's out-flow.
    std::vector<BlockId> Blocks = {Seed};
    std::vector<bool> Visited(Cfg.numBlocks(), false);
    Visited[static_cast<size_t>(Seed)] = true;
    BlockId Cur = Seed;
    while (Blocks.size() < 24) {
      int Best = -1;
      int64_t BestFreq = -1;
      int64_t Total = 0;
      for (int EId : Cfg.outEdges(Cur)) {
        int64_t Freq = FP.EdgeFreq[static_cast<size_t>(EId)];
        Total += Freq;
        if (!LI.isBackEdge(EId) && Freq > BestFreq) {
          BestFreq = Freq;
          Best = EId;
        }
      }
      if (Best < 0 || Total <= 0 ||
          static_cast<double>(BestFreq) <
              Opts.GreedyMinEdgeShare * static_cast<double>(Total))
        break;
      BlockId Next = Cfg.edge(Best).Dst;
      if (Visited[static_cast<size_t>(Next)])
        break;
      Visited[static_cast<size_t>(Next)] = true;
      Blocks.push_back(Next);
      Cur = Next;
    }
    if (Blocks.size() < Opts.MinPathEdges + 1)
      continue;
    unsigned D = formTrace(F, Blocks, Opts.MaxDuplicatedPerFunction);
    if (D > 0) {
      ++Stats.Traces;
      Stats.BlocksDuplicated += D;
    }
  }
  return Stats;
}
