//===- opt/Inliner.h - Profile-guided inlining -----------------*- C++ -*-===//
///
/// \file
/// Edge-profile-guided inlining (Sec. 7.3), following Arnold et al.'s
/// cost/benefit scheme: call sites are prioritized by hotness divided by
/// callee size and inlined in decreasing priority until total program
/// size has grown by the code-bloat budget (default 5%). Callees larger
/// than 200 instructions and recursive calls are never inlined.
///
/// Its purpose here is exactly the paper's: lengthen and complicate
/// paths before path profiling, emulating a staged dynamic optimizer.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_OPT_INLINER_H
#define PPP_OPT_INLINER_H

#include "ir/Module.h"
#include "profile/EdgeProfile.h"

#include <set>

namespace ppp {

struct InlinerOptions {
  double CodeBloat = 0.05;      ///< Allowed program growth fraction.
  unsigned MaxCalleeSize = 200; ///< Instructions.
  unsigned MaxSites = ~0u;      ///< Cap on inlined sites (debug/tests).
};

struct InlineStats {
  unsigned SitesInlined = 0;
  unsigned SitesConsidered = 0;
  int64_t DynCallsInlined = 0; ///< Dynamic calls removed (profile).
  int64_t DynCallsTotal = 0;   ///< All dynamic calls (profile).
  /// Callers that received at least one inlined body -- the functions a
  /// pass manager must invalidate. Not persisted by the prep cache.
  std::set<FuncId> ModifiedFunctions;

  double dynFractionInlined() const {
    return DynCallsTotal == 0 ? 0.0
                              : static_cast<double>(DynCallsInlined) /
                                    static_cast<double>(DynCallsTotal);
  }
};

/// Inlines hot call sites in \p M in place. \p EP must profile \p M in
/// its pre-inlining form (it is stale afterwards; re-profile).
InlineStats runInliner(Module &M, const EdgeProfile &EP,
                       const InlinerOptions &Opts = InlinerOptions());

} // namespace ppp

#endif // PPP_OPT_INLINER_H
