//===- workload/Suite.cpp - The SPEC2000-like benchmark suite ---------------===//

#include "workload/Suite.h"

#include "interp/Interpreter.h"

#include <algorithm>

using namespace ppp;

namespace {

/// Shared INT-style base: branchy, short blocks, modest loops, calls.
WorkloadParams intBase(uint64_t Seed, const std::string &Name) {
  WorkloadParams P;
  P.Seed = Seed;
  P.Name = Name;
  P.NumFunctions = 10;
  P.TopStmtsMin = 5;
  P.TopStmtsMax = 12;
  P.MaxDepth = 3;
  P.IfPct = 34;
  P.LoopPct = 12;
  P.SwitchPct = 6;
  P.CallPct = 16;
  P.OpsMin = 1;
  P.OpsMax = 4;
  P.SkewedIfPct = 72;
  P.SkewMin = 88;
  P.SkewMax = 97;
  P.TripMin = 2;
  P.TripMax = 10;
  P.HotLoopPct = 20;
  P.HotTripMin = 30;
  P.HotTripMax = 120;
  return P;
}

/// Shared FP-style base: loop nests, long straight-line blocks, few
/// branches, high trip counts.
WorkloadParams fpBase(uint64_t Seed, const std::string &Name) {
  WorkloadParams P;
  P.Seed = Seed;
  P.Name = Name;
  P.NumFunctions = 6;
  P.TopStmtsMin = 3;
  P.TopStmtsMax = 7;
  P.MaxDepth = 3;
  P.IfPct = 10;
  P.LoopPct = 32;
  P.SwitchPct = 0;
  P.CallPct = 10;
  P.OpsMin = 3;
  P.OpsMax = 9;
  P.SkewedIfPct = 90;
  P.SkewMin = 92;
  P.SkewMax = 99;
  P.TripMin = 4;
  P.TripMax = 16;
  P.HotLoopPct = 45;
  P.HotTripMin = 50;
  P.HotTripMax = 250;
  return P;
}

} // namespace

std::vector<BenchmarkSpec> ppp::spec2000Suite() {
  std::vector<BenchmarkSpec> Suite;
  auto AddInt = [&](const std::string &Name, uint64_t Seed,
                    auto Tweak) {
    BenchmarkSpec S;
    S.Name = Name;
    S.Params = intBase(Seed, Name);
    S.IsFp = false;
    Tweak(S);
    Suite.push_back(std::move(S));
  };
  auto AddFp = [&](const std::string &Name, uint64_t Seed, auto Tweak) {
    BenchmarkSpec S;
    S.Name = Name;
    S.Params = fpBase(Seed, Name);
    S.IsFp = true;
    Tweak(S);
    Suite.push_back(std::move(S));
  };

  // --- CINT2000 ---
  // vpr: place-and-route; branchy inner loops, moderate skew.
  AddInt("vpr", 0x1001, [](BenchmarkSpec &S) {
    S.Params.IfPct = 36;
    S.Params.TopStmtsMin = 7;
    S.Params.TopStmtsMax = 14;
    S.Params.MaxDepth = 4;
    S.Params.SkewedIfPct = 60;
    S.Params.SkewMin = 80;
    S.Params.SkewMax = 95;
  });
  // mcf: tiny code, pointer-chasing loops, few distinct paths.
  AddInt("mcf", 0x1002, [](BenchmarkSpec &S) {
    S.Params.NumFunctions = 5;
    S.Params.TopStmtsMin = 3;
    S.Params.TopStmtsMax = 7;
    S.Params.IfPct = 24;
    S.Params.LoopPct = 22;
    S.Params.MemOpPct = 45;
    S.Params.SkewedIfPct = 85;
  });
  // crafty: chess search; very branchy, hard-to-predict decisions and
  // huge path spaces (the paper's hardest coverage case).
  AddInt("crafty", 0x1003, [](BenchmarkSpec &S) {
    S.Params.NumFunctions = 12;
    S.Params.TopStmtsMin = 8;
    S.Params.TopStmtsMax = 16;
    S.Params.IfPct = 42;
    S.Params.MaxDepth = 4;
    S.Params.SkewedIfPct = 35; // Mostly balanced branches.
    S.Params.SwitchPct = 8;
    S.AllowInlining = false; // No cross-module inlining in the paper.
  });
  // parser: grammar exploration; many warm paths, deep nesting.
  AddInt("parser", 0x1004, [](BenchmarkSpec &S) {
    S.Params.NumFunctions = 12;
    S.Params.IfPct = 40;
    S.Params.MaxDepth = 4;
    S.Params.SkewedIfPct = 50;
    S.Params.SkewMin = 75;
    S.Params.SkewMax = 92;
  });
  // perlbmk: interpreter dispatch; switch-heavy.
  AddInt("perlbmk", 0x1005, [](BenchmarkSpec &S) {
    S.Params.SwitchPct = 14;
    S.Params.SwitchArmsMin = 4;
    S.Params.SwitchArmsMax = 8;
    S.Params.SkewedIfPct = 55;
    S.AllowInlining = false;
  });
  // gap: group-theory interpreter; mixed branches and arithmetic.
  AddInt("gap", 0x1006, [](BenchmarkSpec &S) {
    S.Params.SwitchPct = 10;
    S.Params.SkewedIfPct = 70;
  });
  // bzip2: compression; skewed bit-twiddling loops.
  AddInt("bzip2", 0x1007, [](BenchmarkSpec &S) {
    S.Params.NumFunctions = 6;
    S.Params.LoopPct = 20;
    S.Params.HotLoopPct = 35;
    S.Params.SkewedIfPct = 80;
    S.Params.MemOpPct = 40;
  });
  // twolf: placement; branchy with moderate skew (hard for PPP too).
  AddInt("twolf", 0x1008, [](BenchmarkSpec &S) {
    S.Params.IfPct = 38;
    S.Params.SkewedIfPct = 45;
    S.Params.SkewMin = 70;
    S.Params.SkewMax = 90;
  });

  // --- CFP2000 ---
  // wupwise: wide loop nests with inner conditionals.
  AddFp("wupwise", 0x2001, [](BenchmarkSpec &S) {
    S.Params.IfPct = 16;
    S.Params.SkewedIfPct = 60;
  });
  // swim: pure stencil loops; almost no branching (PPP instruments
  // nothing -- the paper's exception case).
  AddFp("swim", 0x2002, [](BenchmarkSpec &S) {
    S.Params.IfPct = 1;
    S.Params.SwitchPct = 0;
    S.Params.CallPct = 4;
    S.Params.OpsMin = 12;
    S.Params.OpsMax = 28;
    S.Params.LoopPct = 38;
  });
  // mgrid: multigrid; like swim with slightly more control flow.
  AddFp("mgrid", 0x2003, [](BenchmarkSpec &S) {
    S.Params.IfPct = 3;
    S.Params.CallPct = 6;
    S.Params.OpsMin = 10;
    S.Params.OpsMax = 22;
    S.Params.LoopPct = 36;
  });
  // applu: PDE solver; deep nests, a few guards.
  AddFp("applu", 0x2004, [](BenchmarkSpec &S) {
    S.Params.IfPct = 8;
    S.Params.MaxDepth = 4;
  });
  // mesa: rasterizer; FP code with real branching.
  AddFp("mesa", 0x2005, [](BenchmarkSpec &S) {
    S.Params.IfPct = 22;
    S.Params.SwitchPct = 4;
    S.Params.SkewedIfPct = 65;
    S.AllowInlining = false;
  });
  // art: neural net; small kernels, fully inlinable.
  AddFp("art", 0x2006, [](BenchmarkSpec &S) {
    S.Params.NumFunctions = 4;
    S.Params.TopStmtsMin = 2;
    S.Params.TopStmtsMax = 5;
    S.Params.IfPct = 14;
    S.Params.CallPct = 18;
  });
  // equake: sparse solver; skewed guards inside hot loops.
  AddFp("equake", 0x2007, [](BenchmarkSpec &S) {
    S.Params.NumFunctions = 4;
    S.Params.IfPct = 12;
    S.Params.MemOpPct = 40;
    S.Params.CallPct = 16;
  });
  // ammp: molecular dynamics; larger bodies, some branching.
  AddFp("ammp", 0x2008, [](BenchmarkSpec &S) {
    S.Params.IfPct = 18;
    S.Params.NumFunctions = 8;
    S.Params.TopStmtsMin = 5;
    S.Params.TopStmtsMax = 9;
    S.Params.SkewedIfPct = 75;
  });
  // sixtrack: accelerator sim; big unrollable loop bodies.
  AddFp("sixtrack", 0x2009, [](BenchmarkSpec &S) {
    S.Params.OpsMin = 10;
    S.Params.OpsMax = 24;
    S.Params.IfPct = 10;
    S.Params.MaxDepth = 4;
  });
  // apsi: meteorology; many small loops, branches in nests.
  AddFp("apsi", 0x200a, [](BenchmarkSpec &S) {
    S.Params.IfPct = 14;
    S.Params.LoopPct = 34;
    S.Params.TripMin = 3;
    S.Params.TripMax = 10;
    S.Params.MaxDepth = 4;
  });

  return Suite;
}

Module ppp::buildCalibrated(const BenchmarkSpec &Spec) {
  // Measure the per-iteration cost of main's driver loop with a small
  // trip count, then scale to the target. One refinement pass absorbs
  // nonlinearity from data-dependent trip counts.
  WorkloadParams P = Spec.Params;
  P.MainLoopTrips = 8;
  uint64_t Target = Spec.TargetDynInstrs;

  for (int Pass = 0; Pass < 2; ++Pass) {
    Module M = generateWorkload(P);
    InterpOptions IO;
    IO.Fuel = Target * 16 + 10'000'000;
    Interpreter I(M, IO);
    RunResult Res = I.run();
    if (Res.FuelExhausted || Res.DynInstrs == 0)
      break;
    double PerTrip = static_cast<double>(Res.DynInstrs) /
                     static_cast<double>(P.MainLoopTrips);
    uint64_t Trips = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(Target) / PerTrip));
    if (Trips == P.MainLoopTrips)
      break;
    P.MainLoopTrips = Trips;
  }
  return generateWorkload(P);
}
