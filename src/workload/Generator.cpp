//===- workload/Generator.cpp - Synthetic workload generation ---------------===//

#include "workload/Generator.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace ppp;

namespace {

/// Builds one function body. Tracks an estimated dynamic cost
/// (statement cost times the product of enclosing trip counts) so
/// nesting and calls cannot blow a single invocation past a work
/// budget; when the budget would be exceeded, the generator falls back
/// to straight-line arithmetic.
class FunctionGen {
public:
  FunctionGen(IRBuilder &B, const Module &M, Rng R,
              const WorkloadParams &P,
              const std::vector<double> &CalleeCosts, double Budget)
      : B(B), M(M), R(R), P(P), CalleeCosts(CalleeCosts), Budget(Budget) {}

  /// Generates a whole function body (after beginFunction) and returns
  /// its estimated per-invocation cost.
  double generate(unsigned NumParams) {
    State = B.emitConst(static_cast<int64_t>(R.next() >> 8));
    for (unsigned PI = 0; PI < NumParams; ++PI)
      B.emitBinary(Opcode::Xor, State, static_cast<RegId>(PI), State);
    RegId M0 = B.emitLoad(State);
    B.emitBinary(Opcode::Add, State, M0, State);
    pushPool(M0);
    Cost += 4;

    unsigned Stmts =
        static_cast<unsigned>(R.range(P.TopStmtsMin, P.TopStmtsMax));
    genStmts(Stmts, 0, 1.0);
    B.emitRet(State);
    Cost += 1;
    return Cost;
  }

  /// Generates loop-body statements into the current block using
  /// \p StateReg as the evolving state (used for main's driver loop).
  void generateStmts(RegId StateReg, unsigned Stmts) {
    State = StateReg;
    genStmts(Stmts, 1, 1.0);
  }

private:
  void bump(double Mult, double C) { Cost += Mult * C; }
  bool budgetAllows(double Extra) { return Cost + Extra <= Budget; }

  RegId pick() {
    if (Pool.empty() || R.percent(30))
      return State;
    return Pool[R.below(Pool.size())];
  }

  void pushPool(RegId V) {
    Pool.push_back(V);
    if (Pool.size() > 8)
      Pool.erase(Pool.begin());
  }

  /// state = state * K + C, keeping the high bits well mixed.
  void stepState(double Mult) {
    B.emitMulImm(State, 0x27bb2ee687b0b0fdLL, State);
    B.emitAddImm(State, static_cast<int64_t>(R.next() | 1), State);
    bump(Mult, 2);
  }

  /// A register holding 1 with probability ~TruePct/100.
  RegId cond(unsigned TruePct, double Mult) {
    stepState(Mult);
    RegId C33 = B.emitConst(33);
    RegId Hi = B.emitBinary(Opcode::Shr, State, C33);
    RegId C100 = B.emitConst(100);
    RegId Mod = B.emitBinary(Opcode::RemU, Hi, C100);
    RegId Cut = B.emitConst(static_cast<int64_t>(TruePct));
    RegId Cmp = B.emitBinary(Opcode::CmpLt, Mod, Cut);
    bump(Mult, 5);
    return Cmp;
  }

  void genOps(double Mult) {
    unsigned N = static_cast<unsigned>(R.range(P.OpsMin, P.OpsMax));
    for (unsigned I = 0; I < N; ++I) {
      if (R.percent(P.MemOpPct)) {
        if (R.percent(50)) {
          RegId V = B.emitLoad(pick());
          pushPool(V);
          B.emitBinary(Opcode::Xor, State, V, State);
          bump(Mult, 2);
        } else {
          B.emitStore(pick(), pick());
          bump(Mult, 1);
        }
        continue;
      }
      static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Xor,
                                   Opcode::And, Opcode::Or,  Opcode::Add,
                                   Opcode::Mul, Opcode::Shl, Opcode::CmpLt};
      Opcode Op = Ops[R.below(sizeof(Ops) / sizeof(Ops[0]))];
      RegId V = B.emitBinary(Op, pick(), pick());
      pushPool(V);
      bump(Mult, 1);
    }
    stepState(Mult);
  }

  void genIf(unsigned Depth, double Mult) {
    bool Skewed = R.percent(P.SkewedIfPct);
    unsigned TruePct =
        Skewed ? static_cast<unsigned>(R.range(P.SkewMin, P.SkewMax))
               : static_cast<unsigned>(R.range(35, 65));
    RegId C = cond(TruePct, Mult);
    BlockId ThenB = B.newBlock();
    BlockId ElseB = B.newBlock();
    BlockId Join = B.newBlock();
    B.emitCondBr(C, ThenB, ElseB);

    B.setInsertPoint(ThenB);
    genStmts(static_cast<unsigned>(R.range(1, 2)), Depth + 1,
             Mult * TruePct / 100.0);
    B.emitBr(Join);

    B.setInsertPoint(ElseB);
    // The cold side sometimes carries real work, sometimes only the
    // jump -- both shapes occur in real programs.
    if (R.percent(70))
      genStmts(1, Depth + 1, Mult * (100 - TruePct) / 100.0);
    B.emitBr(Join);

    B.setInsertPoint(Join);
  }

  void genLoop(unsigned Depth, double Mult) {
    bool Hot = Depth == 0 && R.percent(P.HotLoopPct);
    int64_t TripLo = Hot ? P.HotTripMin : P.TripMin;
    int64_t TripHi = Hot ? P.HotTripMax : P.TripMax;
    int64_t TripEst = (TripLo + TripHi) / 2;

    if (!budgetAllows(Mult * static_cast<double>(TripEst) * 12)) {
      genOps(Mult);
      return;
    }

    // Trip count: constant, or data-dependent within [lo, hi].
    RegId TripReg;
    double TripAvg;
    if (R.percent(50)) {
      int64_t T = R.range(TripLo, TripHi);
      TripReg = B.emitConst(T);
      TripAvg = static_cast<double>(T);
    } else {
      stepState(Mult);
      RegId C33 = B.emitConst(33);
      RegId Hi = B.emitBinary(Opcode::Shr, State, C33);
      RegId W = B.emitConst(TripHi - TripLo + 1);
      RegId Mod = B.emitBinary(Opcode::RemU, Hi, W);
      TripReg = B.emitAddImm(Mod, TripLo);
      TripAvg = static_cast<double>(TripLo + TripHi) / 2.0;
      bump(Mult, 4);
    }

    RegId IVar = B.emitConst(0);
    BlockId Header = B.newBlock();
    BlockId Exit = B.newBlock();
    B.emitBr(Header);

    B.setInsertPoint(Header);
    genStmts(static_cast<unsigned>(R.range(1, 2)), Depth + 1,
             Mult * TripAvg);
    B.emitAddImm(IVar, 1, IVar);
    RegId Cmp = B.emitBinary(Opcode::CmpLt, IVar, TripReg);
    B.emitCondBr(Cmp, Header, Exit);
    bump(Mult * TripAvg, 3);

    B.setInsertPoint(Exit);
  }

  void genSwitch(unsigned Depth, double Mult) {
    unsigned Arms =
        static_cast<unsigned>(R.range(P.SwitchArmsMin, P.SwitchArmsMax));
    stepState(Mult);
    RegId C7 = B.emitConst(7);
    RegId Sel = B.emitBinary(Opcode::Shr, State, C7);
    bump(Mult, 2);
    std::vector<BlockId> Targets;
    for (unsigned A = 0; A < Arms; ++A)
      Targets.push_back(B.newBlock());
    BlockId Join = B.newBlock();
    B.emitSwitch(Sel, Targets);
    for (unsigned A = 0; A < Arms; ++A) {
      B.setInsertPoint(Targets[A]);
      genStmts(1, Depth + 1, Mult / Arms);
      B.emitBr(Join);
    }
    B.setInsertPoint(Join);
  }

  void genCall(double Mult) {
    if (CalleeCosts.empty()) {
      genOps(Mult);
      return;
    }
    size_t NumLeaves =
        std::min<size_t>(P.LeafFunctions, CalleeCosts.size());
    size_t Callee = NumLeaves > 0 && R.percent(P.LeafCallBiasPct)
                        ? R.below(NumLeaves)
                        : R.below(CalleeCosts.size());
    double CalleeCost = CalleeCosts[Callee];
    if (!budgetAllows(Mult * (CalleeCost + 3))) {
      genOps(Mult);
      return;
    }
    unsigned NumParams = M.function(static_cast<FuncId>(Callee)).NumParams;
    std::vector<RegId> Args;
    for (unsigned AI = 0; AI < NumParams; ++AI)
      Args.push_back(pick());
    RegId Res = B.emitCall(static_cast<FuncId>(Callee), Args);
    B.emitBinary(Opcode::Xor, State, Res, State);
    pushPool(Res);
    bump(Mult, 3 + CalleeCost);
  }

  void genStmts(unsigned Count, unsigned Depth, double Mult) {
    for (unsigned S = 0; S < Count; ++S) {
      unsigned Roll = static_cast<unsigned>(R.below(100));
      if (Depth < P.MaxDepth && Roll < P.IfPct) {
        genIf(Depth, Mult);
      } else if (Depth < P.MaxDepth && Roll < P.IfPct + P.LoopPct) {
        genLoop(Depth, Mult);
      } else if (Depth < P.MaxDepth &&
                 Roll < P.IfPct + P.LoopPct + P.SwitchPct) {
        genSwitch(Depth, Mult);
      } else if (Roll < P.IfPct + P.LoopPct + P.SwitchPct + P.CallPct) {
        genCall(Mult);
      } else {
        genOps(Mult);
      }
    }
  }

  IRBuilder &B;
  const Module &M;
  Rng R;
  const WorkloadParams &P;
  const std::vector<double> &CalleeCosts;
  double Budget;
  double Cost = 0;
  RegId State = -1;
  std::vector<RegId> Pool;
};

} // namespace

Module ppp::generateWorkload(const WorkloadParams &Params) {
  Module M;
  M.Name = Params.Name;
  M.MemWords = 4096;
  IRBuilder B(M);
  Rng Root(Params.Seed);

  // Per-invocation work budget for callable functions and for one
  // iteration of main's driver loop.
  const double FuncBudget = 20000.0;

  std::vector<double> Costs;
  for (unsigned FI = 0; FI < Params.NumFunctions; ++FI) {
    unsigned NumParams = static_cast<unsigned>(Root.range(1, 2));
    bool IsLeaf = FI < Params.LeafFunctions;
    WorkloadParams FnParams = Params;
    if (IsLeaf) {
      // Tiny hot helpers: at most one branch, no loops/switches/calls.
      FnParams.TopStmtsMin = 1;
      FnParams.TopStmtsMax = 2;
      FnParams.MaxDepth = 1;
      FnParams.LoopPct = 0;
      FnParams.SwitchPct = 0;
      FnParams.CallPct = 0;
      FnParams.OpsMin = 1;
      FnParams.OpsMax = 3;
    }
    B.beginFunction((IsLeaf ? "leaf" : "f") + std::to_string(FI),
                    NumParams);
    FunctionGen G(B, M, Root.fork(), FnParams, Costs, FuncBudget);
    Costs.push_back(G.generate(NumParams));
    B.endFunction();
  }

  // main: a driver loop around generated work plus explicit calls.
  FuncId MainId = B.beginFunction("main", 0);
  M.MainId = MainId;
  {
    Rng MainRng = Root.fork();
    RegId State = B.emitConst(static_cast<int64_t>(MainRng.next() >> 8));
    RegId IVar = B.emitConst(0);
    RegId Trip = B.emitConst(static_cast<int64_t>(Params.MainLoopTrips));
    BlockId Header = B.newBlock();
    BlockId Exit = B.newBlock();
    B.emitBr(Header);

    B.setInsertPoint(Header);
    B.emitBinary(Opcode::Xor, State, IVar, State);
    FunctionGen G(B, M, MainRng.fork(), Params, Costs, FuncBudget);
    G.generateStmts(State, static_cast<unsigned>(MainRng.range(2, 4)));
    // The driver's explicit calls target the *non-leaf* functions (the
    // program's "phases"), guaranteeing the large bodies actually run;
    // leaf utilities are reached through the generated statements and
    // through the phases themselves.
    size_t FirstPhase = std::min<size_t>(Params.LeafFunctions, Costs.size());
    size_t NumPhases = Costs.size() - FirstPhase;
    unsigned Calls =
        Costs.empty() ? 0
                      : std::min<unsigned>(3, static_cast<unsigned>(
                                                  Costs.size()));
    for (unsigned CI = 0; CI < Calls; ++CI) {
      FuncId Callee = static_cast<FuncId>(
          NumPhases > 0 ? FirstPhase + MainRng.below(NumPhases)
                        : MainRng.below(Costs.size()));
      unsigned NumParams = M.function(Callee).NumParams;
      std::vector<RegId> Args;
      for (unsigned AI = 0; AI < NumParams; ++AI)
        Args.push_back(AI % 2 == 0 ? State : IVar);
      RegId Res = B.emitCall(Callee, Args);
      B.emitBinary(Opcode::Xor, State, Res, State);
    }
    B.emitStore(IVar, State);
    B.emitAddImm(IVar, 1, IVar);
    RegId Cmp = B.emitBinary(Opcode::CmpLt, IVar, Trip);
    B.emitCondBr(Cmp, Header, Exit);

    B.setInsertPoint(Exit);
    B.emitRet(State);
  }
  B.endFunction();

  assert(verifyModule(M).empty() && "generated module fails verification");
  return M;
}

Module ppp::generatePhasedWorkload(const PhasedWorkloadParams &Params) {
  Module MA = generateWorkload(Params.PhaseA);
  Module MB = generateWorkload(Params.PhaseB);

  Module M;
  M.Name = Params.Name;
  M.MemWords = std::max(MA.MemWords, MB.MemWords);

  // Fuse: A's functions keep their ids, B's shift up by A's count.
  FuncId Offset = static_cast<FuncId>(MA.numFunctions());
  M.Functions = std::move(MA.Functions);
  for (Function &F : MB.Functions) {
    F.Name += "_b";
    for (BasicBlock &BB : F.Blocks)
      for (Instr &I : BB.Instrs)
        if (I.Op == Opcode::Call)
          I.Callee += Offset;
    M.Functions.push_back(std::move(F));
  }
  // The old mains take no parameters and end in Ret: callable as-is.
  FuncId DriverA = MA.MainId;
  FuncId DriverB = Offset + MB.MainId;

  IRBuilder B(M);
  FuncId MainId = B.beginFunction("main", 0);
  M.MainId = MainId;
  {
    RegId State = B.emitConst(0x9e37);
    RegId IVar = B.emitConst(0);
    RegId Trip = B.emitConst(static_cast<int64_t>(Params.Trips));
    RegId Len = B.emitConst(
        static_cast<int64_t>(std::max<uint64_t>(1, Params.PhaseLen)));
    RegId One = B.emitConst(1);
    RegId Zero = B.emitConst(0);
    BlockId Header = B.newBlock();
    BlockId CallA = B.newBlock();
    BlockId CallB = B.newBlock();
    BlockId Latch = B.newBlock();
    BlockId Exit = B.newBlock();
    B.emitBr(Header);

    // Phase select: ((i / PhaseLen) & 1) == 0 -> A, else B.
    B.setInsertPoint(Header);
    RegId Phase = B.emitBinary(Opcode::DivU, IVar, Len);
    RegId Bit = B.emitBinary(Opcode::And, Phase, One);
    RegId IsA = B.emitBinary(Opcode::CmpEq, Bit, Zero);
    B.emitCondBr(IsA, CallA, CallB);

    B.setInsertPoint(CallA);
    RegId RA = B.emitCall(DriverA, {});
    B.emitBinary(Opcode::Xor, State, RA, State);
    B.emitBr(Latch);

    B.setInsertPoint(CallB);
    RegId RB = B.emitCall(DriverB, {});
    B.emitBinary(Opcode::Xor, State, RB, State);
    B.emitBr(Latch);

    B.setInsertPoint(Latch);
    B.emitStore(IVar, State);
    B.emitAddImm(IVar, 1, IVar);
    RegId Cmp = B.emitBinary(Opcode::CmpLt, IVar, Trip);
    B.emitCondBr(Cmp, Header, Exit);

    B.setInsertPoint(Exit);
    B.emitRet(State);
  }
  B.endFunction();

  assert(verifyModule(M).empty() && "phased module fails verification");
  return M;
}
