//===- workload/Suite.h - The SPEC2000-like benchmark suite ----*- C++ -*-===//
///
/// \file
/// Eighteen synthetic benchmarks named after the SPEC2000 programs the
/// paper evaluates (Sec. 7.2; gzip/vortex/gcc are omitted there too).
/// Each recipe tunes the generator toward its namesake's path-profiling
/// character -- branchiness, loop depth and trip counts, branch skew,
/// call-graph density -- which is what accuracy, coverage, and overhead
/// actually depend on. INT-style recipes are branchy with short blocks
/// and many warm paths; FP-style recipes are loop-heavy with long
/// blocks and few, highly-biased paths.
///
/// Every benchmark is calibrated (by scaling main's driver loop) to a
/// common dynamic-size target so per-benchmark numbers are comparable.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_WORKLOAD_SUITE_H
#define PPP_WORKLOAD_SUITE_H

#include "workload/Generator.h"

#include <string>
#include <vector>

namespace ppp {

/// One benchmark: generator parameters plus pipeline flags.
struct BenchmarkSpec {
  std::string Name;
  WorkloadParams Params;
  bool IsFp = false;
  /// Emulates the paper's cross-module-inlining limitation (crafty,
  /// perlbmk, mesa run with 0% calls inlined).
  bool AllowInlining = true;
  uint64_t TargetDynInstrs = 1'500'000;
};

/// The 18 benchmark recipes in the paper's order (INT then FP).
std::vector<BenchmarkSpec> spec2000Suite();

/// Generates \p Spec's module with main's driver loop scaled so a clean
/// run lands near TargetDynInstrs.
Module buildCalibrated(const BenchmarkSpec &Spec);

} // namespace ppp

#endif // PPP_WORKLOAD_SUITE_H
