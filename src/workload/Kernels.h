//===- workload/Kernels.h - Hand-written algorithm kernels -----*- C++ -*-===//
///
/// \file
/// Classic algorithms written directly in the IR, each paired with a
/// host-side reference implementation that replays the exact same
/// computation (including the interpreter's seeded memory image and
/// address masking) to predict the program's return value. They give
/// the profilers *designed* control flow -- sorting's data-dependent
/// inner loop, switch dispatch, real recursion -- complementing the
/// random structured generator, and they double as deep interpreter
/// correctness tests.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_WORKLOAD_KERNELS_H
#define PPP_WORKLOAD_KERNELS_H

#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ppp {

/// A kernel program plus the return value it must produce when run with
/// the given memory seed.
struct Kernel {
  std::string Name;
  Module M;
  uint64_t MemSeed = 0;
  int64_t ExpectedReturn = 0;
};

/// Insertion sort over the first \p N memory words; returns a
/// position-weighted checksum of the sorted array. Branchy with a
/// data-dependent inner loop (parser/twolf-like shape).
Kernel makeInsertionSortKernel(unsigned N, uint64_t MemSeed);

/// Dense K x K matrix multiply (C = A * B over memory regions);
/// returns a checksum of C. Deep counted loop nest (swim-like shape).
Kernel makeMatMulKernel(unsigned K, uint64_t MemSeed);

/// An 8-state table-driven automaton stepped \p Steps times on
/// pseudo-random symbols via Switch dispatch (perlbmk-like shape);
/// returns the final state mixed with a transition checksum.
Kernel makeDfaKernel(unsigned Steps, uint64_t MemSeed);

/// Naive doubly-recursive Fibonacci; exercises deep call stacks and
/// call-transparent path profiling. Returns fib(N) with wrapping
/// arithmetic.
Kernel makeFibKernel(unsigned N, uint64_t MemSeed);

/// A bit-twiddling checksum loop with a skewed guard (bzip2-like
/// shape); returns the accumulated value.
Kernel makeCrcKernel(unsigned Rounds, uint64_t MemSeed);

/// All of the above at moderate sizes.
std::vector<Kernel> standardKernels(uint64_t MemSeed = 0x5eed);

} // namespace ppp

#endif // PPP_WORKLOAD_KERNELS_H
