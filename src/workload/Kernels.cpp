//===- workload/Kernels.cpp - Hand-written algorithm kernels ------------------===//

#include "workload/Kernels.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Rng.h"

#include <cassert>
#include <vector>

using namespace ppp;

namespace {

/// The interpreter's initial memory image for a given module size and
/// seed (must mirror Interpreter::run exactly).
std::vector<int64_t> initialMemory(uint64_t MemWords, uint64_t MemSeed) {
  std::vector<int64_t> Mem(MemWords);
  Rng MemRng(MemSeed);
  for (int64_t &W : Mem)
    W = static_cast<int64_t>(MemRng.next() >> 16);
  return Mem;
}

uint64_t wrapMul(uint64_t A, uint64_t B) { return A * B; }
uint64_t wrapAdd(uint64_t A, uint64_t B) { return A + B; }

} // namespace

Kernel ppp::makeInsertionSortKernel(unsigned N, uint64_t MemSeed) {
  Kernel K;
  K.Name = "insertion_sort";
  K.MemSeed = MemSeed;
  K.M.Name = K.Name;
  K.M.MemWords = 4096;
  assert(N < K.M.MemWords && "array must fit in memory");

  IRBuilder B(K.M);
  B.beginFunction("main", 0);
  RegId I = B.emitConst(1);
  RegId NReg = B.emitConst(static_cast<int64_t>(N));
  RegId One = B.emitConst(1);

  BlockId OuterH = B.newBlock();
  BlockId InnerH = B.newBlock();
  BlockId Swap = B.newBlock();
  BlockId InnerE = B.newBlock();
  BlockId Sum = B.newBlock();
  BlockId SumH = B.newBlock();
  BlockId Done = B.newBlock();
  B.emitBr(OuterH);

  // for (i = 1; i < N; ++i)
  B.setInsertPoint(OuterH);
  RegId J = B.emitMov(I);
  B.emitBr(InnerH);

  //   while (j > 0 && a[j-1] > a[j]) swap, --j;   (non-short-circuit)
  B.setInsertPoint(InnerH);
  RegId Zero = B.emitConst(0);
  RegId JPos = B.emitBinary(Opcode::CmpLt, Zero, J);
  RegId Jm1 = B.emitBinary(Opcode::Sub, J, One);
  RegId Prev = B.emitLoad(Jm1);
  RegId Cur = B.emitLoad(J);
  RegId OutOfOrder = B.emitBinary(Opcode::CmpLt, Cur, Prev);
  RegId Go = B.emitBinary(Opcode::And, JPos, OutOfOrder);
  B.emitCondBr(Go, Swap, InnerE);

  B.setInsertPoint(Swap);
  B.emitStore(Jm1, Cur);
  B.emitStore(J, Prev);
  B.emitBinary(Opcode::Sub, J, One, J);
  B.emitBr(InnerH);

  B.setInsertPoint(InnerE);
  B.emitAddImm(I, 1, I);
  RegId More = B.emitBinary(Opcode::CmpLt, I, NReg);
  B.emitCondBr(More, OuterH, Sum);

  // checksum = sum i * a[i]
  B.setInsertPoint(Sum);
  RegId Acc = B.emitConst(0);
  RegId SI = B.emitConst(0);
  B.emitBr(SumH);
  B.setInsertPoint(SumH);
  RegId V = B.emitLoad(SI);
  RegId Weighted = B.emitBinary(Opcode::Mul, SI, V);
  B.emitBinary(Opcode::Add, Acc, Weighted, Acc);
  B.emitAddImm(SI, 1, SI);
  RegId SMore = B.emitBinary(Opcode::CmpLt, SI, NReg);
  B.emitCondBr(SMore, SumH, Done);
  B.setInsertPoint(Done);
  B.emitRet(Acc);
  B.endFunction();
  assert(verifyModule(K.M).empty());

  // Host reference.
  std::vector<int64_t> Mem = initialMemory(K.M.MemWords, MemSeed);
  uint64_t Mask = K.M.MemWords - 1;
  for (uint64_t I2 = 1; I2 < N; ++I2) {
    uint64_t J2 = I2;
    for (;;) {
      bool JPos2 = J2 > 0;
      // Mirror the non-short-circuit loads with address masking.
      int64_t Prev2 = Mem[(J2 - 1) & Mask];
      int64_t Cur2 = Mem[J2 & Mask];
      if (!(JPos2 && Cur2 < Prev2))
        break;
      Mem[(J2 - 1) & Mask] = Cur2;
      Mem[J2 & Mask] = Prev2;
      --J2;
    }
  }
  uint64_t Acc2 = 0;
  for (uint64_t I2 = 0; I2 < N; ++I2)
    Acc2 = wrapAdd(Acc2, wrapMul(I2, static_cast<uint64_t>(Mem[I2])));
  K.ExpectedReturn = static_cast<int64_t>(Acc2);
  return K;
}

Kernel ppp::makeMatMulKernel(unsigned KDim, uint64_t MemSeed) {
  Kernel K;
  K.Name = "matmul";
  K.MemSeed = MemSeed;
  K.M.Name = K.Name;
  K.M.MemWords = 4096;
  assert(3u * KDim * KDim < K.M.MemWords && "matrices must fit");
  int64_t ABase = 0, BBase = KDim * KDim, CBase = 2 * KDim * KDim;

  IRBuilder B(K.M);
  B.beginFunction("main", 0);
  RegId N = B.emitConst(static_cast<int64_t>(KDim));
  RegId I = B.emitConst(0);

  BlockId IH = B.newBlock(), JH = B.newBlock(), KH = B.newBlock();
  BlockId KE = B.newBlock(), JE = B.newBlock(), Done = B.newBlock();
  RegId J = B.newReg(), KV = B.newReg(), Acc = B.newReg();
  B.emitBr(IH);

  B.setInsertPoint(IH);
  B.emitConst(0, J);
  B.emitBr(JH);

  B.setInsertPoint(JH);
  B.emitConst(0, KV);
  B.emitConst(0, Acc);
  B.emitBr(KH);

  B.setInsertPoint(KH);
  // A[i*n + k]
  RegId In = B.emitBinary(Opcode::Mul, I, N);
  RegId AIdx = B.emitBinary(Opcode::Add, In, KV);
  RegId AAddr = B.emitAddImm(AIdx, ABase);
  RegId AV = B.emitLoad(AAddr);
  // B[k*n + j]
  RegId Kn = B.emitBinary(Opcode::Mul, KV, N);
  RegId BIdx = B.emitBinary(Opcode::Add, Kn, J);
  RegId BAddr = B.emitAddImm(BIdx, BBase);
  RegId BV = B.emitLoad(BAddr);
  RegId Prod = B.emitBinary(Opcode::Mul, AV, BV);
  B.emitBinary(Opcode::Add, Acc, Prod, Acc);
  B.emitAddImm(KV, 1, KV);
  RegId KMore = B.emitBinary(Opcode::CmpLt, KV, N);
  B.emitCondBr(KMore, KH, KE);

  B.setInsertPoint(KE);
  RegId CIdx = B.emitBinary(Opcode::Add, In, J);
  RegId CAddr = B.emitAddImm(CIdx, CBase);
  B.emitStore(CAddr, Acc);
  B.emitAddImm(J, 1, J);
  RegId JMore = B.emitBinary(Opcode::CmpLt, J, N);
  B.emitCondBr(JMore, JH, JE);

  B.setInsertPoint(JE);
  B.emitAddImm(I, 1, I);
  RegId IMore = B.emitBinary(Opcode::CmpLt, I, N);
  B.emitCondBr(IMore, IH, Done);

  // Checksum of C.
  B.setInsertPoint(Done);
  RegId Sum = B.emitConst(0);
  RegId SI = B.emitConst(0);
  RegId Total = B.emitConst(static_cast<int64_t>(KDim * KDim));
  BlockId SumH = B.newBlock(), End = B.newBlock();
  B.emitBr(SumH);
  B.setInsertPoint(SumH);
  RegId Addr = B.emitAddImm(SI, CBase);
  RegId CV = B.emitLoad(Addr);
  B.emitBinary(Opcode::Xor, Sum, CV, Sum);
  B.emitAddImm(SI, 1, SI);
  RegId SMore = B.emitBinary(Opcode::CmpLt, SI, Total);
  B.emitCondBr(SMore, SumH, End);
  B.setInsertPoint(End);
  B.emitRet(Sum);
  B.endFunction();
  assert(verifyModule(K.M).empty());

  // Host reference.
  std::vector<int64_t> Mem = initialMemory(K.M.MemWords, MemSeed);
  for (unsigned I2 = 0; I2 < KDim; ++I2)
    for (unsigned J2 = 0; J2 < KDim; ++J2) {
      uint64_t Acc2 = 0;
      for (unsigned K2 = 0; K2 < KDim; ++K2)
        Acc2 = wrapAdd(
            Acc2, wrapMul(static_cast<uint64_t>(
                              Mem[static_cast<size_t>(ABase) + I2 * KDim + K2]),
                          static_cast<uint64_t>(
                              Mem[static_cast<size_t>(BBase) + K2 * KDim + J2])));
      Mem[static_cast<size_t>(CBase) + I2 * KDim + J2] =
          static_cast<int64_t>(Acc2);
    }
  uint64_t Sum2 = 0;
  for (unsigned E = 0; E < KDim * KDim; ++E)
    Sum2 ^= static_cast<uint64_t>(Mem[static_cast<size_t>(CBase) + E]);
  K.ExpectedReturn = static_cast<int64_t>(Sum2);
  return K;
}

Kernel ppp::makeDfaKernel(unsigned Steps, uint64_t MemSeed) {
  Kernel K;
  K.Name = "dfa";
  K.MemSeed = MemSeed;
  K.M.Name = K.Name;
  K.M.MemWords = 4096;

  constexpr int64_t LcgMul = 6364136223846793005LL;
  constexpr int64_t LcgAdd = 1442695040888963407LL;

  IRBuilder B(K.M);
  B.beginFunction("main", 0);
  RegId State = B.emitConst(0);
  RegId X = B.emitConst(777);
  RegId Check = B.emitConst(0);
  RegId I = B.emitConst(0);
  RegId N = B.emitConst(static_cast<int64_t>(Steps));

  BlockId H = B.newBlock(), Join = B.newBlock(), Done = B.newBlock();
  std::vector<BlockId> Arms;
  for (int A = 0; A < 8; ++A)
    Arms.push_back(B.newBlock());
  B.emitBr(H);

  B.setInsertPoint(H);
  B.emitMulImm(X, LcgMul, X);
  B.emitAddImm(X, LcgAdd, X);
  RegId C29 = B.emitConst(29);
  RegId Sym = B.emitBinary(Opcode::Shr, X, C29);
  RegId Mixed = B.emitBinary(Opcode::Add, State, Sym);
  B.emitSwitch(Mixed, Arms);

  // Each arm sets the next state and perturbs the checksum uniquely.
  const int64_t NextState[8] = {3, 1, 4, 1, 5, 2, 6, 0};
  for (int A = 0; A < 8; ++A) {
    B.setInsertPoint(Arms[A]);
    B.emitConst(NextState[A], State);
    B.emitMulImm(Check, 31, Check);
    B.emitAddImm(Check, A + 1, Check);
    B.emitBr(Join);
  }

  B.setInsertPoint(Join);
  B.emitAddImm(I, 1, I);
  RegId More = B.emitBinary(Opcode::CmpLt, I, N);
  B.emitCondBr(More, H, Done);
  B.setInsertPoint(Done);
  RegId Out = B.emitBinary(Opcode::Xor, Check, State);
  B.emitRet(Out);
  B.endFunction();
  assert(verifyModule(K.M).empty());

  // Host reference.
  uint64_t X2 = 777, State2 = 0, Check2 = 0;
  for (unsigned S = 0; S < Steps; ++S) {
    X2 = wrapAdd(wrapMul(X2, static_cast<uint64_t>(LcgMul)),
                 static_cast<uint64_t>(LcgAdd));
    uint64_t Sym2 = X2 >> 29;
    unsigned Arm = static_cast<unsigned>((State2 + Sym2) % 8);
    State2 = static_cast<uint64_t>(NextState[Arm]);
    Check2 = wrapAdd(wrapMul(Check2, 31), Arm + 1);
  }
  K.ExpectedReturn = static_cast<int64_t>(Check2 ^ State2);
  return K;
}

Kernel ppp::makeFibKernel(unsigned N, uint64_t MemSeed) {
  Kernel K;
  K.Name = "fib";
  K.MemSeed = MemSeed;
  K.M.Name = K.Name;
  K.M.MemWords = 1024;

  IRBuilder B(K.M);
  // fib(n): n < 2 ? n : fib(n-1) + fib(n-2).
  B.beginFunction("fib", 1);
  RegId Two = B.emitConst(2);
  RegId Small = B.emitBinary(Opcode::CmpLt, 0, Two);
  BlockId Base = B.newBlock(), Rec = B.newBlock();
  B.emitCondBr(Small, Base, Rec);
  B.setInsertPoint(Base);
  B.emitRet(0);
  B.setInsertPoint(Rec);
  RegId Nm1 = B.emitAddImm(0, -1);
  RegId F1 = B.emitCall(0, {Nm1});
  RegId Nm2 = B.emitAddImm(0, -2);
  RegId F2 = B.emitCall(0, {Nm2});
  B.emitRet(B.emitBinary(Opcode::Add, F1, F2));
  B.endFunction();
  FuncId MainId = B.beginFunction("main", 0);
  RegId Arg = B.emitConst(static_cast<int64_t>(N));
  B.emitRet(B.emitCall(0, {Arg}));
  B.endFunction();
  K.M.MainId = MainId;
  assert(verifyModule(K.M).empty());

  uint64_t A = 0, Bv = 1;
  for (unsigned I = 0; I < N; ++I) {
    uint64_t Next = wrapAdd(A, Bv);
    A = Bv;
    Bv = Next;
  }
  K.ExpectedReturn = static_cast<int64_t>(A);
  return K;
}

Kernel ppp::makeCrcKernel(unsigned Rounds, uint64_t MemSeed) {
  Kernel K;
  K.Name = "crc";
  K.MemSeed = MemSeed;
  K.M.Name = K.Name;
  K.M.MemWords = 4096;

  IRBuilder B(K.M);
  B.beginFunction("main", 0);
  RegId Acc = B.emitConst(0x1234567);
  RegId I = B.emitConst(0);
  RegId N = B.emitConst(static_cast<int64_t>(Rounds));
  BlockId H = B.newBlock(), Odd = B.newBlock(), Join = B.newBlock(),
          Done = B.newBlock();
  B.emitBr(H);

  B.setInsertPoint(H);
  RegId V = B.emitLoad(I);
  B.emitBinary(Opcode::Xor, Acc, V, Acc);
  RegId C13 = B.emitConst(13);
  RegId Sh = B.emitBinary(Opcode::Shr, Acc, C13);
  B.emitBinary(Opcode::Xor, Acc, Sh, Acc);
  B.emitMulImm(Acc, 0x2545f4914f6cdd1dLL, Acc);
  // Skewed guard: ~10% of values take the extra mixing arm.
  RegId C10 = B.emitConst(10);
  RegId Mod = B.emitBinary(Opcode::RemU, Acc, C10);
  RegId Zero = B.emitConst(0);
  RegId IsZero = B.emitBinary(Opcode::CmpEq, Mod, Zero);
  B.emitCondBr(IsZero, Odd, Join);
  B.setInsertPoint(Odd);
  RegId C31 = B.emitConst(31);
  RegId Hi = B.emitBinary(Opcode::Shl, Acc, C31);
  B.emitBinary(Opcode::Add, Acc, Hi, Acc);
  B.emitBr(Join);
  B.setInsertPoint(Join);
  B.emitAddImm(I, 1, I);
  RegId More = B.emitBinary(Opcode::CmpLt, I, N);
  B.emitCondBr(More, H, Done);
  B.setInsertPoint(Done);
  B.emitRet(Acc);
  B.endFunction();
  assert(verifyModule(K.M).empty());

  // Host reference.
  std::vector<int64_t> Mem = initialMemory(K.M.MemWords, MemSeed);
  uint64_t Mask = K.M.MemWords - 1;
  uint64_t Acc2 = 0x1234567;
  for (uint64_t I2 = 0; I2 < Rounds; ++I2) {
    Acc2 ^= static_cast<uint64_t>(Mem[I2 & Mask]);
    Acc2 ^= Acc2 >> 13;
    Acc2 = wrapMul(Acc2, 0x2545f4914f6cdd1dULL);
    if (Acc2 % 10 == 0)
      Acc2 = wrapAdd(Acc2, Acc2 << 31);
  }
  K.ExpectedReturn = static_cast<int64_t>(Acc2);
  return K;
}

std::vector<Kernel> ppp::standardKernels(uint64_t MemSeed) {
  std::vector<Kernel> Out;
  Out.push_back(makeInsertionSortKernel(300, MemSeed));
  Out.push_back(makeMatMulKernel(18, MemSeed));
  Out.push_back(makeDfaKernel(20000, MemSeed));
  Out.push_back(makeFibKernel(21, MemSeed));
  Out.push_back(makeCrcKernel(30000, MemSeed));
  return Out;
}
