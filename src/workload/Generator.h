//===- workload/Generator.h - Synthetic workload generation ----*- C++ -*-===//
///
/// \file
/// Seeded structured-program generation, standing in for SPEC2000
/// (unavailable here). Programs are built as an AST of sequences,
/// skewed/balanced ifs, counted loops, multiway switches, straight-line
/// arithmetic, and calls over an acyclic call graph, then lowered to the
/// IR. Branch conditions hash an evolving per-function state register
/// that mixes loop counters and loads from the seeded global memory, so
/// control flow is data-dependent yet deterministic, with controllable
/// bias -- the properties path-profiling behaviour actually depends on.
///
/// Programs always terminate: every loop is counted (data-dependent
/// bounds are clamped to a range).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_WORKLOAD_GENERATOR_H
#define PPP_WORKLOAD_GENERATOR_H

#include "ir/Module.h"

#include <cstdint>
#include <string>

namespace ppp {

/// Knobs controlling the generated program's shape. Percentages are the
/// per-statement probabilities when the generator picks the next
/// statement kind; they need not sum to 100 (the remainder becomes
/// straight-line arithmetic).
struct WorkloadParams {
  uint64_t Seed = 1;
  std::string Name = "synthetic";

  unsigned NumFunctions = 8; ///< Callable functions besides main.
  /// The first functions are tiny leaf utilities (SPEC-style hot
  /// helpers): straight-line or one branch, no loops or calls. Call
  /// sites are biased toward them, which is what makes the paper's 5%
  /// code-bloat inlining budget able to inline ~45% of dynamic calls.
  unsigned LeafFunctions = 3;
  unsigned LeafCallBiasPct = 55; ///< Chance a call targets a leaf.
  unsigned TopStmtsMin = 4;      ///< Statements in a function body.
  unsigned TopStmtsMax = 10;
  unsigned MaxDepth = 3; ///< Maximum nesting of if/loop/switch.

  unsigned IfPct = 30;
  unsigned LoopPct = 15;
  unsigned SwitchPct = 5;
  unsigned CallPct = 15;

  unsigned OpsMin = 2; ///< Straight-line chunk length.
  unsigned OpsMax = 8;
  unsigned MemOpPct = 25; ///< Chance an op is a load/store.

  unsigned SkewedIfPct = 70; ///< Fraction of ifs that are biased.
  unsigned SkewMin = 88;     ///< Bias range for skewed ifs (percent).
  unsigned SkewMax = 98;

  unsigned TripMin = 2; ///< Counted-loop trip range (typical loops).
  unsigned TripMax = 12;
  unsigned HotLoopPct = 25; ///< Chance a loop is hot instead.
  unsigned HotTripMin = 40;
  unsigned HotTripMax = 200;

  unsigned SwitchArmsMin = 3;
  unsigned SwitchArmsMax = 6;

  /// Iterations of main's driver loop; the calibrator scales this to
  /// hit a dynamic-size target.
  uint64_t MainLoopTrips = 50;
};

/// Generates a complete, verified module. The same params (including
/// Seed) always produce the identical module; changing only
/// MainLoopTrips changes one loop bound and nothing else.
Module generateWorkload(const WorkloadParams &Params);

/// A phase-shifting program: two independently generated workloads
/// fused into one module, with a new main that alternates between
/// their drivers every PhaseLen iterations. The phases share global
/// memory but no functions, so the program's hot set migrates wholesale
/// at each switch -- the scenario where an adaptive optimizer's
/// per-phase specialization beats a static pipeline's one whole-run
/// compromise (bench/adaptive_steadystate).
struct PhasedWorkloadParams {
  std::string Name = "phased";
  WorkloadParams PhaseA; ///< MainLoopTrips = work per driver call.
  WorkloadParams PhaseB;
  uint64_t PhaseLen = 16; ///< Driver iterations per phase.
  uint64_t Trips = 64;    ///< Total driver iterations.
};

/// Generates the fused, verified phased module. PhaseB's functions are
/// appended after PhaseA's (call targets remapped); both old mains
/// become callable drivers under the new main.
Module generatePhasedWorkload(const PhasedWorkloadParams &Params);

} // namespace ppp

#endif // PPP_WORKLOAD_GENERATOR_H
