//===- pass/Pipeline.cpp - Textual pipeline and profiler specs --------------===//

#include "pass/Pipeline.h"

#include "pass/Passes.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace ppp;

namespace {

std::vector<std::string> splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string::npos) {
      Out.push_back(S.substr(Start));
      return Out;
    }
    Out.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

} // namespace

std::string ppp::activePreparePipelineSpec() {
  if (const char *E = std::getenv("PPP_PIPELINE"); E && *E)
    return E;
  return DefaultPreparePipelineSpec;
}

bool ppp::applyTechnique(ProfilerOptions &O, const std::string &Technique,
                         bool Enable) {
  if (Technique == "sac") {
    // Self-adjusting + global cold criteria (Secs. 4.2/4.3). Enabling
    // them also lifts TPP's avoid-hashing-only gate: the global
    // criterion needs teeth.
    O.GlobalColdCriterion = Enable;
    O.SelfAdjust = Enable;
    if (Enable)
      O.ColdOnlyToAvoidHash = false;
  } else if (Technique == "fp") {
    // Free cold-path poisoning (Sec. 4.6): remove cold edges anywhere.
    // Off reverts to TPP's remove-only-to-avoid-hashing policy.
    O.ColdOnlyToAvoidHash = !Enable;
  } else if (Technique == "push") {
    O.Push = Enable ? PushMode::IgnoreCold : PushMode::Blocked;
  } else if (Technique == "spn") {
    O.SmartNumbering = Enable;
  } else if (Technique == "lc") {
    O.LowCoverageGate = Enable;
  } else if (Technique.size() > 5 && Technique.compare(0, 5, "kiter") == 0) {
    // Parameterized: kiter<k> sets the chain depth (Sec. k-iteration
    // paths). -kiter<k> reverts to plain acyclic profiling.
    uint64_t K = 0;
    for (size_t I = 5; I < Technique.size(); ++I) {
      char C = Technique[I];
      if (C < '0' || C > '9')
        return false;
      K = K * 10 + static_cast<uint64_t>(C - '0');
      if (K > ProfilerOptions::MaxKIterations)
        return false;
    }
    if (K < 1)
      return false;
    O.KIterations = Enable ? K : 1;
  } else {
    return false;
  }
  O.Name += (Enable ? "+" : "-") + Technique;
  return true;
}

bool ppp::parseProfilerSpec(const std::string &Spec, ProfilerOptions &Out,
                            std::string &Error) {
  std::vector<std::string> Parts = splitOn(Spec, ';');
  const std::string &Preset = Parts[0];
  if (Preset == "pp")
    Out = ProfilerOptions::pp();
  else if (Preset == "tpp")
    Out = ProfilerOptions::tpp();
  else if (Preset == "tpp-checked")
    Out = ProfilerOptions::tppChecked();
  else if (Preset == "ppp")
    Out = ProfilerOptions::ppp();
  else if (Preset == "trace")
    Out = ProfilerOptions::trace();
  else if (Preset == "trace+time")
    Out = ProfilerOptions::traceTimed();
  else {
    Error = formatString("unknown profiler preset '%s' (expected pp, tpp, "
                         "tpp-checked, ppp, trace, or trace+time)",
                         Preset.c_str());
    return false;
  }
  for (size_t I = 1; I < Parts.size(); ++I) {
    const std::string &Tok = Parts[I];
    if (Tok.size() < 2 || (Tok[0] != '+' && Tok[0] != '-')) {
      Error = formatString("technique toggle '%s' in profiler spec '%s' must "
                           "be +tech or -tech",
                           Tok.c_str(), Spec.c_str());
      return false;
    }
    if (!applyTechnique(Out, Tok.substr(1), Tok[0] == '+')) {
      Error = formatString("unknown technique '%s' in profiler spec '%s' "
                           "(expected sac, fp, push, spn, lc, or kiter<k> "
                           "with 1 <= k <= %llu)",
                           Tok.substr(1).c_str(), Spec.c_str(),
                           (unsigned long long)ProfilerOptions::MaxKIterations);
      return false;
    }
  }
  return true;
}

ProfilerOptions ppp::mustParseProfilerSpec(const std::string &Spec) {
  ProfilerOptions O;
  std::string Error;
  if (!parseProfilerSpec(Spec, O, Error)) {
    fprintf(stderr, "error: %s\n", Error.c_str());
    exit(1);
  }
  return O;
}

bool ppp::parsePipeline(const std::string &Spec, ModulePassManager &MPM,
                        std::string &Error) {
  if (Spec.empty()) {
    Error = "empty pipeline spec";
    return false;
  }
  for (const std::string &Tok : splitOn(Spec, ',')) {
    if (Tok == "profile") {
      MPM.addPass(std::make_unique<ProfilePass>(false));
    } else if (Tok == "profile<bench>") {
      MPM.addPass(std::make_unique<ProfilePass>(true));
    } else if (Tok == "inline") {
      MPM.addPass(std::make_unique<InlinerPass>());
    } else if (Tok == "unroll") {
      MPM.addPass(std::make_unique<UnrollerPass>());
    } else if (Tok == "verify") {
      MPM.addPass(std::make_unique<VerifierPass>());
    } else if (Tok.size() > 12 && Tok.compare(0, 11, "instrument<") == 0 &&
               Tok.back() == '>') {
      ProfilerOptions O;
      if (!parseProfilerSpec(Tok.substr(11, Tok.size() - 12), O, Error))
        return false;
      MPM.addPass(
          std::make_unique<InstrumentPass>(Tok.substr(11, Tok.size() - 12), O));
    } else {
      Error = formatString(
          "unknown pass '%s' in pipeline '%s' (expected profile, "
          "profile<bench>, inline, unroll, verify, or instrument<spec>)",
          Tok.c_str(), Spec.c_str());
      return false;
    }
  }
  return true;
}
