//===- pass/Passes.cpp - Concrete pipeline passes ---------------------------===//

#include "pass/Passes.h"

#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "pass/AnalysisManager.h"
#include "profile/Collectors.h"
#include "support/Format.h"

using namespace ppp;

PreservedAnalyses ProfilePass::run(Module &M, FunctionAnalysisManager &FAM,
                                   PassContext &Ctx) {
  EdgeProfiler EdgeObs(M);
  PathTracer PathObs(M);
  InterpOptions IO;
  IO.Costs = UseBenchCosts ? Ctx.BenchCosts : Ctx.StdCosts;
  Interpreter I(M, IO);
  I.addObserver(&EdgeObs);
  I.addObserver(&PathObs);
  RunResult Res = I.run();
  if (Res.FuelExhausted) {
    Ctx.Error = formatString("%s did not terminate", M.Name.c_str());
    return PreservedAnalyses::all();
  }
  Ctx.Profiles.emplace_back();
  ProfileSnapshot &S = Ctx.Profiles.back();
  S.EP = EdgeObs.takeProfile();
  S.Oracle = PathObs.takeProfile();
  S.Cost = Res.Cost;
  S.DynInstrs = Res.DynInstrs;
  // The deque never shrinks, so the address stays valid pipeline-wide.
  FAM.setAdvice(&S.EP);
  return PreservedAnalyses::all();
}

PreservedAnalyses InlinerPass::run(Module &M, FunctionAnalysisManager &FAM,
                                   PassContext &Ctx) {
  const EdgeProfile *Advice = FAM.advice();
  if (!Advice) {
    Ctx.Error = "inline pass requires a prior profile pass";
    return PreservedAnalyses::all();
  }
  if (!Ctx.AllowInlining) {
    // Count-only: dynamic call stats from a throwaway copy.
    Module Tmp = M;
    InlinerOptions IO = Ctx.InlineOpts;
    IO.MaxSites = 0;
    Ctx.Inline = runInliner(Tmp, *Advice, IO);
    return PreservedAnalyses::all();
  }
  Ctx.Inline = runInliner(M, *Advice, Ctx.InlineOpts);
  return PreservedAnalyses::allExceptFunctions(Ctx.Inline.ModifiedFunctions);
}

PreservedAnalyses UnrollerPass::run(Module &M, FunctionAnalysisManager &FAM,
                                    PassContext &Ctx) {
  const EdgeProfile *Advice = FAM.advice();
  if (!Advice) {
    Ctx.Error = "unroll pass requires a prior profile pass";
    return PreservedAnalyses::all();
  }
  Ctx.Unroll = runUnroller(M, *Advice, Ctx.UnrollOpts);
  return PreservedAnalyses::allExceptFunctions(Ctx.Unroll.ModifiedFunctions);
}

PreservedAnalyses VerifierPass::run(Module &M, FunctionAnalysisManager &,
                                    PassContext &Ctx) {
  if (std::string E = verifyModule(M); !E.empty())
    Ctx.Error = formatString("expanded %s: %s", M.Name.c_str(), E.c_str());
  return PreservedAnalyses::all();
}

PreservedAnalyses InstrumentPass::run(Module &M, FunctionAnalysisManager &FAM,
                                      PassContext &Ctx) {
  if (Ctx.Profiles.empty()) {
    Ctx.Error = formatString("%s requires a prior profile pass",
                             name().c_str());
    return PreservedAnalyses::all();
  }
  Ctx.Instr = std::make_unique<InstrumentationResult>(
      instrumentModule(M, Ctx.Profiles.back().EP, Opts, FAM));
  return PreservedAnalyses::all();
}
