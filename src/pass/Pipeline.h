//===- pass/Pipeline.h - Textual pipeline and profiler specs ---*- C++ -*-===//
///
/// \file
/// Textual specs for the two configurable layers of the system:
///
///  Pipeline specs -- comma-separated pass names for a
///  ModulePassManager:
///
///    pipeline  := pass ("," pass)*
///    pass      := "profile" | "profile<bench>" | "inline" | "unroll"
///               | "verify" | "instrument<" profiler-spec ">"
///
///  The default preparation pipeline (Harness steps 2-4) is
///  DefaultPreparePipelineSpec; PPP_PIPELINE overrides it, which is how
///  pipeline ablations run without recompiling. The spec also joins the
///  preparation-cache key, so differently-prepared artifacts never
///  collide.
///
///  Profiler specs -- a preset plus technique toggles, replacing the
///  hand-rolled option-editing of the Figure 13 ablations:
///
///    profiler-spec := preset (";" ("+" | "-") technique)*
///    preset        := "pp" | "tpp" | "tpp-checked" | "ppp"
///    technique     := "sac" | "fp" | "push" | "spn" | "lc"
///
///  "ppp;-sac" is PPP without the self-adjusting/global cold criteria
///  (a leave-one-out row); "tpp;+lc" is TPP plus the low-coverage gate
///  (a one-at-a-time row). Toggles apply left to right; the resulting
///  options Name is the preset name with "+tech"/"-tech" appended.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PASS_PIPELINE_H
#define PPP_PASS_PIPELINE_H

#include "pass/PassManager.h"
#include "pathprof/Profilers.h"

#include <string>

namespace ppp {

/// The preparation pipeline mirroring Harness steps 2-4: profile the
/// original, inline on that advice, re-profile, unroll, verify, then
/// take the final (bench-cost) profile as self advice.
inline constexpr const char *DefaultPreparePipelineSpec =
    "profile,inline,profile,unroll,verify,profile<bench>";

/// The spec preparation actually runs: PPP_PIPELINE when set and
/// non-empty, otherwise DefaultPreparePipelineSpec.
std::string activePreparePipelineSpec();

/// Appends the passes of \p Spec to \p MPM. On a malformed spec leaves
/// \p Error describing the first problem and returns false (\p MPM may
/// hold a prefix of the passes).
bool parsePipeline(const std::string &Spec, ModulePassManager &MPM,
                   std::string &Error);

/// Parses a profiler spec ("ppp", "tpp;+sac", "ppp;-fp;-push") into
/// \p Out. False + \p Error on a malformed spec.
bool parseProfilerSpec(const std::string &Spec, ProfilerOptions &Out,
                       std::string &Error);

/// parseProfilerSpec for statically-known specs: prints the error to
/// stderr and exits on failure.
ProfilerOptions mustParseProfilerSpec(const std::string &Spec);

/// Applies one technique toggle to \p O (the "+tech"/"-tech" step of a
/// profiler spec), including the Name suffix. \p Technique must be one
/// of sac/fp/push/spn/lc; returns false (leaving \p O's flags
/// untouched) otherwise.
bool applyTechnique(ProfilerOptions &O, const std::string &Technique,
                    bool Enable);

} // namespace ppp

#endif // PPP_PASS_PIPELINE_H
