//===- pass/AnalysisManager.h - Per-function analysis cache ----*- C++ -*-===//
///
/// \file
/// The FunctionAnalysisManager computes-and-caches the per-function
/// analyses every stage of the system consumes -- CfgView, Dominators,
/// LoopInfo, StaticProfile, and the profile-annotated full Ball-Larus
/// DAG -- with explicit invalidation. Transform passes report which
/// functions they modified (pass/Pass.h's PreservedAnalyses); unchanged
/// functions keep their cached analyses, so running the four profiler
/// presets over one prepared module computes each shared analysis once
/// instead of once per preset.
///
/// Results are handed out as shared_ptr<const T>: a consumer (e.g. a
/// FunctionPlan that must outlive the manager) keeps its analysis alive
/// even after invalidation discards the cache slot. Dependent analyses
/// hold their prerequisites the same way, so a cached BLDag can never
/// outlive the CfgView it points into.
///
/// The manager is deliberately NOT thread-safe: one manager serves one
/// benchmark pipeline on one thread (the experiment drivers parallelize
/// across benchmarks, never within one).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PASS_ANALYSISMANAGER_H
#define PPP_PASS_ANALYSISMANAGER_H

#include "analysis/BLDag.h"
#include "analysis/CfgView.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/StaticProfile.h"
#include "ir/Module.h"
#include "pathprof/Numbering.h"
#include "profile/EdgeProfile.h"

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace ppp {

/// The analyses the manager knows how to compute.
enum class AnalysisKind : unsigned {
  Cfg,         ///< CfgView (edge enumeration / adjacency).
  Doms,        ///< Dominators.
  Loops,       ///< LoopInfo (reuses cached Dominators when present).
  Static,      ///< StaticProfile (heuristic frequencies).
  ProfiledDag, ///< Full BLDag + numbering + coverage, from the advice EP.
};
inline constexpr unsigned NumAnalysisKinds = 5;

const char *analysisKindName(AnalysisKind K);

/// The full (no cold edges, no disconnections) Ball-Larus DAG of one
/// function, annotated with the advice edge profile: frequencies set,
/// Ball-Larus path numbers assigned, plus the facts the instrumentation
/// pipeline reads off it -- the full path count (TPP's hash gate) and
/// the definite-flow branch coverage of the edge profile (PPP's
/// low-coverage routine gate, Sec. 4.1). Identical for every profiler
/// preset over one (module, advice) pair, which is what makes it worth
/// caching.
struct ProfiledDag {
  BLDag Dag;
  NumberingResult Num;
  double BranchCoverage = 0.0; ///< DF/F of the advice profile.
  /// Keep-alive: Dag points into this view.
  std::shared_ptr<const CfgView> Cfg;
};

/// Computed-vs-cached counters, per analysis kind and in aggregate.
struct AnalysisStats {
  uint64_t Computed = 0;
  uint64_t CacheHits = 0;
};

class FunctionAnalysisManager {
public:
  /// Binds the manager to \p M (which must outlive it). \p Advice is
  /// the edge profile the ProfiledDag analysis is computed from; it may
  /// be null until setAdvice() provides one.
  explicit FunctionAnalysisManager(const Module &M,
                                   const EdgeProfile *Advice = nullptr);

  const Module &module() const { return *M; }

  std::shared_ptr<const CfgView> cfg(FuncId F);
  std::shared_ptr<const Dominators> dominators(FuncId F);
  std::shared_ptr<const LoopInfo> loops(FuncId F);
  std::shared_ptr<const StaticProfile> staticProfile(FuncId F);
  /// Requires advice; aborts with a diagnostic if none is bound.
  std::shared_ptr<const ProfiledDag> profiledDag(FuncId F);

  /// Rebinds the advice profile. A different profile invalidates every
  /// cached ProfiledDag (the only advice-dependent analysis); rebinding
  /// the same object is a no-op, so repeated instrumentation runs over
  /// one prepared benchmark share the cache.
  void setAdvice(const EdgeProfile *EP);
  const EdgeProfile *advice() const { return Advice; }

  /// Drops every cached analysis of \p F (a transform changed it).
  void invalidate(FuncId F);
  /// Drops everything (module-wide structural change).
  void invalidateAll();

  const AnalysisStats &stats(AnalysisKind K) const {
    return Stats[static_cast<size_t>(K)];
  }
  /// Aggregate over all kinds.
  AnalysisStats totals() const;
  uint64_t invalidations() const { return Invalidations; }

private:
  struct FunctionEntry {
    std::shared_ptr<const CfgView> Cfg;
    std::shared_ptr<const Dominators> Doms;
    std::shared_ptr<const LoopInfo> Loops;
    std::shared_ptr<const StaticProfile> Static;
    std::shared_ptr<const ProfiledDag> Dag;
  };

  FunctionEntry &entry(FuncId F);
  void count(AnalysisKind K, bool Hit);

  const Module *M;
  const EdgeProfile *Advice;
  std::vector<FunctionEntry> Entries;
  std::array<AnalysisStats, NumAnalysisKinds> Stats{};
  uint64_t Invalidations = 0;
};

} // namespace ppp

#endif // PPP_PASS_ANALYSISMANAGER_H
