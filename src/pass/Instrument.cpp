//===- pass/Instrument.cpp - Staged instrumentation pipeline ----------------===//
///
/// instrumentModule(), re-homed from pathprof/Profilers.cpp as five
/// explicit stage passes over a nested pass manager:
///
///   instrument:gate   coverage gate (Sec. 4.1) from the cached
///                     profile-annotated full DAG
///   instrument:plan   cold edges, obvious loops, self-adjusting loop,
///                     final DAG + path numbering (Secs. 3.2, 4.2-4.4)
///   instrument:count  event counting (Sec. 4.5)
///   instrument:place  placement, pushing, poisoning, table sizing
///   instrument:lower  profiling ops lowered into the cloned module
///
/// The stages run over the instrumented *clone* while the analysis
/// manager stays bound to the original module, so every analysis they
/// pull (CFG, loops, static profile, profiled full DAG) is shared: with
/// one manager serving several presets over one prepared module, the
/// gate facts and CFG analyses are computed once, not once per preset.
/// Each stage preserves all analyses -- nothing here mutates the
/// analyzed module.
///
/// The decision logic is the original, verbatim: stdout of every
/// experiment is byte-identical to the monolithic driver.
///
//===----------------------------------------------------------------------===//

#include "analysis/StaticProfile.h"
#include "pass/AnalysisManager.h"
#include "pass/Pass.h"
#include "pass/PassManager.h"
#include "pathprof/ColdEdges.h"
#include "pathprof/EventCounting.h"
#include "pathprof/Lowering.h"
#include "pathprof/Obvious.h"
#include "pathprof/Profilers.h"
#include "support/CheckedMath.h"

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

using namespace ppp;

namespace {

/// Path count of the function under a tentative cold/disconnect set
/// (order does not affect N).
uint64_t countPaths(const CfgView &Cfg, const LoopInfo &LI,
                    const std::set<int> &Colds, const std::set<int> &Disc,
                    const std::vector<int64_t> &CfgFreq, int64_t Invocations,
                    bool &Overflow) {
  BLDag::BuildOptions BO;
  BO.ColdCfgEdges = &Colds;
  BO.DisconnectedBackEdges = &Disc;
  BLDag Dag = BLDag::build(Cfg, LI, BO);
  Dag.setFrequencies(CfgFreq, Invocations);
  NumberingResult R = assignPathNumbers(Dag, NumberingOrder::BallLarus);
  Overflow = R.Overflow;
  return R.NumPaths;
}

/// Work-in-progress state of one function between stages.
struct FuncScratch {
  std::shared_ptr<const ProfiledDag> Full; ///< Advice-annotated full DAG.
  std::unique_ptr<BLDag> Dag;              ///< Final (pruned) DAG.
  NumberingResult Num;
  PlacementResult Place;
};

/// State shared by the five stage passes of one instrumentModule() run.
struct InstrumentState {
  const ProfilerOptions *Opts = nullptr;
  InstrumentationResult *Result = nullptr;
  int64_t TotalUnitFlow = 0;
  std::vector<FuncScratch> Funcs;
};

class InstrumentStagePass : public ModulePass {
public:
  explicit InstrumentStagePass(std::shared_ptr<InstrumentState> St)
      : St(std::move(St)) {}

protected:
  std::shared_ptr<InstrumentState> St;
};

/// Per-function analyses + the Sec. 4.1 low-coverage routine gate.
class GateStage : public InstrumentStagePass {
public:
  using InstrumentStagePass::InstrumentStagePass;
  std::string name() const override { return "instrument:gate"; }

  PreservedAnalyses run(Module &, FunctionAnalysisManager &FAM,
                        PassContext &Ctx) override {
    const ProfilerOptions &Opts = *St->Opts;
    for (unsigned FI = 0; FI < FAM.module().numFunctions(); ++FI) {
      FuncId F = static_cast<FuncId>(FI);
      FunctionPlan &Plan = St->Result->Plans[FI];
      Plan.Cfg = FAM.cfg(F);
      Plan.Loops = FAM.loops(F);
      St->Funcs[FI].Full = FAM.profiledDag(F);
      Plan.EdgeCoverage = St->Funcs[FI].Full->BranchCoverage;
      if (Opts.LowCoverageGate &&
          Plan.EdgeCoverage >= Opts.CoverageThreshold) {
        Plan.Skip = SkipReason::HighCoverage;
        ++Ctx.FunctionsSkipped;
      }
    }
    return PreservedAnalyses::all();
  }
};

/// Cold edges, obvious loops, the self-adjusting loop, and the final
/// numbered DAG.
class PlanStage : public InstrumentStagePass {
public:
  using InstrumentStagePass::InstrumentStagePass;
  std::string name() const override { return "instrument:plan"; }

  PreservedAnalyses run(Module &, FunctionAnalysisManager &FAM,
                        PassContext &Ctx) override {
    const ProfilerOptions &Opts = *St->Opts;
    const EdgeProfile &EP = *FAM.advice();
    for (unsigned FI = 0; FI < FAM.module().numFunctions(); ++FI) {
      FunctionPlan &Plan = St->Result->Plans[FI];
      Plan.KRequested = Opts.KIterations;
      if (Plan.Skip != SkipReason::NotSkipped)
        continue;
      // Chaining is incompatible with some backends; decide the demotion
      // up front so the self-adjusting loop targets the right path count.
      KDemoteReason Demote = KDemoteReason::None;
      if (Opts.KIterations > 1) {
        if (Opts.TraceBackend)
          Demote = KDemoteReason::TraceBackend;
        else if (Opts.Poison == PoisonStyle::Checked)
          Demote = KDemoteReason::CheckedPoisoning;
      }
      bool WantChain = Opts.KIterations > 1 && Demote == KDemoteReason::None;
      FuncScratch &Sc = St->Funcs[FI];
      const FunctionEdgeProfile &FP = EP.func(static_cast<FuncId>(FI));
      const CfgView &Cfg = *Plan.Cfg;
      const LoopInfo &LI = *Plan.Loops;
      const NumberingResult &FullNum = Sc.Full->Num;

      std::vector<int64_t> CfgFreq(FP.EdgeFreq.begin(), FP.EdgeFreq.end());
      int64_t Invocations = FP.Invocations;

      ColdEdgeCriteria Criteria;
      Criteria.UseLocal = Opts.LocalColdCriterion;
      Criteria.LocalFraction = Opts.LocalColdFraction;
      Criteria.UseGlobal = Opts.GlobalColdCriterion;
      Criteria.GlobalFraction = Opts.GlobalColdFraction;

      std::set<int> Colds, Disc;
      std::unique_ptr<BLDag> Dag;
      NumberingResult Num;
      NumberingOrder Order = Opts.SmartNumbering
                                 ? NumberingOrder::DecreasingFreq
                                 : NumberingOrder::BallLarus;

      unsigned MaxIters = Opts.SelfAdjust ? Opts.SelfAdjustMaxIters : 1;
      for (unsigned Iter = 0; Iter < MaxIters; ++Iter) {
        Colds = computeColdEdges(Cfg, FP, Criteria, St->TotalUnitFlow);
        if (Opts.ColdOnlyToAvoidHash && !Colds.empty()) {
          // TPP: poisoning costs, so eliminate cold paths only when
          // doing so moves the routine from a hash table to an array.
          bool Ovf2 = false;
          uint64_t Full = FullNum.Overflow ? UINT64_MAX : FullNum.NumPaths;
          std::set<int> NoDisc;
          uint64_t WithColds =
              countPaths(Cfg, LI, Colds, NoDisc, CfgFreq, Invocations, Ovf2);
          bool Helps = Full > Opts.HashThreshold && !Ovf2 &&
                       WithColds <= Opts.HashThreshold;
          if (!Helps)
            Colds.clear();
        }
        Disc.clear();
        if (Opts.ObviousLoopDisconnect) {
          ObviousLoops OL =
              findObviousLoops(Cfg, LI, FP, Colds, Opts.ObviousLoopMinTrip);
          Disc = OL.DisconnectBackEdges;
          Colds.insert(OL.ColdEntryExitEdges.begin(),
                       OL.ColdEntryExitEdges.end());
        }
        BLDag::BuildOptions BO;
        BO.ColdCfgEdges = &Colds;
        BO.DisconnectedBackEdges = &Disc;
        Dag = std::make_unique<BLDag>(BLDag::build(Cfg, LI, BO));
        Dag->setFrequencies(CfgFreq, Invocations);
        Num = assignPathNumbers(*Dag, Order);
        // Chained routines hash (or size an array) by the k-expanded
        // count, so self-adjustment must target it too; a saturated DP
        // keeps adjusting (treated as "too many") and only demotes if
        // still saturated on the final DAG below.
        uint64_t AdjustCount = Num.NumPaths;
        if (WantChain && !Num.Overflow) {
          bool KOvf = false;
          uint64_t KN = countKIterPaths(*Dag, Opts.KIterations, KOvf);
          AdjustCount = KOvf ? UINT64_MAX : KN;
        }
        if (!Num.Overflow && AdjustCount <= Opts.HashThreshold)
          break;
        if (!Opts.SelfAdjust || !Opts.GlobalColdCriterion)
          break;
        Criteria.GlobalMultiplier *= Opts.SelfAdjustFactor;
      }

      Plan.ColdEdges = Colds;
      Plan.DisconnectedBackEdges = Disc;
      Plan.NumPaths = Num.NumPaths;

      if (Num.Overflow) {
        Plan.Skip = SkipReason::Overflow;
        ++Ctx.FunctionsSkipped;
        continue;
      }
      if (Num.NumPaths == 0) {
        Plan.Skip = SkipReason::NoPaths;
        ++Ctx.FunctionsSkipped;
        continue;
      }
      if (Opts.SkipObviousRoutines && allPathsObvious(*Dag, Num)) {
        Plan.Skip = SkipReason::AllObvious;
        ++Ctx.FunctionsSkipped;
        continue;
      }

      if (WantChain) {
        bool HasBack = false;
        for (const DagEdge &E : Dag->edges())
          if (E.Kind == DagEdgeKind::LoopExit) {
            HasBack = true;
            break;
          }
        // Without back edges nothing can chain: the k=1 profile already
        // is the k-path profile, so staying plain is not a demotion.
        if (HasBack) {
          bool KOvf = false;
          uint64_t KN = countKIterPaths(*Dag, Opts.KIterations, KOvf);
          if (KOvf) {
            Demote = KDemoteReason::PathCountOverflow;
          } else {
            Plan.KEffective = Opts.KIterations;
            Plan.NumKPaths = KN;
          }
        }
      }
      Plan.KDemote = Demote;

      Sc.Dag = std::move(Dag);
      Sc.Num = std::move(Num);
    }
    return PreservedAnalyses::all();
  }
};

/// Event counting: profile-driven with smart numbering, static
/// heuristics otherwise.
class CountStage : public InstrumentStagePass {
public:
  using InstrumentStagePass::InstrumentStagePass;
  std::string name() const override { return "instrument:count"; }

  PreservedAnalyses run(Module &, FunctionAnalysisManager &FAM,
                        PassContext &) override {
    const ProfilerOptions &Opts = *St->Opts;
    for (unsigned FI = 0; FI < FAM.module().numFunctions(); ++FI) {
      FuncScratch &Sc = St->Funcs[FI];
      if (!Sc.Dag)
        continue;
      if (Opts.SmartNumbering) {
        runEventCounting(*Sc.Dag);
      } else {
        std::shared_ptr<const StaticProfile> SP =
            FAM.staticProfile(static_cast<FuncId>(FI));
        runEventCounting(
            *Sc.Dag,
            dagEdgeWeights(*Sc.Dag, SP->EdgeFreq, StaticProfile::Scale));
      }
    }
    return PreservedAnalyses::all();
  }
};

/// Placement, pushing, poisoning, and counter-table sizing.
class PlaceStage : public InstrumentStagePass {
public:
  using InstrumentStagePass::InstrumentStagePass;
  std::string name() const override { return "instrument:place"; }

  PreservedAnalyses run(Module &, FunctionAnalysisManager &FAM,
                        PassContext &) override {
    const ProfilerOptions &Opts = *St->Opts;
    for (unsigned FI = 0; FI < FAM.module().numFunctions(); ++FI) {
      FuncScratch &Sc = St->Funcs[FI];
      if (!Sc.Dag)
        continue;
      FunctionPlan &Plan = St->Result->Plans[FI];
      bool Chained = Plan.KEffective > 1;
      Sc.Place = placeInstrumentation(*Sc.Dag, Sc.Num, Opts.Push, Opts.Poison,
                                      /*PinExitCounts=*/Chained);
      if (Chained) {
        // Digit base: segment numbers (counter indices) are proven to
        // lie in [MinIndex, MaxIndex] and encode as index + 1, so base
        // M = MaxIndex + 2 makes every digit -- hot or free-poisoned --
        // a distinct nonzero value below M.
        int64_t M = Sc.Place.MaxIndex + 2;
        bool Ovf = Sc.Place.MinIndex < 0 || M < 2;
        uint64_t Bound = 1;
        for (uint64_t I = 0; I < Plan.KEffective && !Ovf; ++I)
          Bound = saturatingMul(Bound, static_cast<uint64_t>(M), Ovf);
        if (Ovf || Bound > static_cast<uint64_t>(INT64_MAX)) {
          // Chain ids would not fit the int64 path arithmetic: demote to
          // plain counting (reason recorded, never a silent wrap) and
          // re-place without pinning so the k=1 fallback is bit-identical
          // to an unchained run.
          Plan.KEffective = 1;
          Plan.KDemote = KDemoteReason::IdSpaceOverflow;
          Plan.NumKPaths = 0;
          Chained = false;
          Sc.Place =
              placeInstrumentation(*Sc.Dag, Sc.Num, Opts.Push, Opts.Poison);
        } else {
          Plan.ChainMult = M;
          Plan.IdBound = static_cast<int64_t>(Bound);
        }
      }
      Plan.StaticOps = Sc.Place.StaticOps;

      if (Chained) {
        // Chained ids live in [1, M^k); organize by the k-expanded
        // count, hashing when the valid ids are many or the id space is
        // too sparse for an array.
        bool UseHash = Plan.NumKPaths > Opts.HashThreshold;
        int64_t ArrayNeed = Plan.IdBound;
        if (!UseHash &&
            ArrayNeed > static_cast<int64_t>(16 * Plan.NumKPaths + 64))
          UseHash = true;
        Plan.TableKind =
            UseHash ? PathTable::Kind::Hash : PathTable::Kind::Array;
        Plan.ArraySize = UseHash ? 0 : std::max<int64_t>(ArrayNeed, 1);
        continue;
      }

      bool UseHash = Sc.Num.NumPaths > Opts.HashThreshold;
      // Checked poisoning keeps hot indices in [0, N) and sends
      // poisoned ones (negative) to the cold counter, so N slots
      // suffice.
      int64_t ArrayNeed = Opts.Poison == PoisonStyle::Checked
                              ? static_cast<int64_t>(Sc.Num.NumPaths)
                              : Sc.Place.MaxIndex + 1;
      // Defensive: if compensation could not bound the array tightly,
      // hash instead of allocating a pathological array.
      if (!UseHash &&
          ArrayNeed > static_cast<int64_t>(16 * Sc.Num.NumPaths + 64))
        UseHash = true;
      Plan.TableKind =
          UseHash ? PathTable::Kind::Hash : PathTable::Kind::Array;
      Plan.ArraySize = UseHash ? 0 : std::max<int64_t>(ArrayNeed, 1);
    }
    return PreservedAnalyses::all();
  }
};

/// Lowers the placed profiling ops into the cloned module and seals
/// each plan.
class LowerStage : public InstrumentStagePass {
public:
  using InstrumentStagePass::InstrumentStagePass;
  std::string name() const override { return "instrument:lower"; }

  PreservedAnalyses run(Module &Clone, FunctionAnalysisManager &FAM,
                        PassContext &) override {
    for (unsigned FI = 0; FI < FAM.module().numFunctions(); ++FI) {
      FuncScratch &Sc = St->Funcs[FI];
      if (!Sc.Dag)
        continue;
      FunctionPlan &Plan = St->Result->Plans[FI];
      SiteOps Sites = finalizeSites(*Sc.Dag, Sc.Place,
                                    /*Chained=*/Plan.KEffective > 1);
      lowerInstrumentation(Clone.function(static_cast<FuncId>(FI)), *Plan.Cfg,
                           Sites);
      Plan.Sites = std::move(Sites);
      Plan.Dag = std::move(Sc.Dag);
      Plan.Numbering = std::move(Sc.Num);
      Plan.buildEdgeIndex();
      Plan.Instrumented = true;
    }
    // Only the clone changed; the analyzed module is untouched.
    return PreservedAnalyses::all();
  }
};

} // namespace

InstrumentationResult ppp::instrumentModule(const Module &M,
                                            const EdgeProfile &EP,
                                            const ProfilerOptions &Opts,
                                            FunctionAnalysisManager &FAM) {
  assert(&M == &FAM.module() &&
         "analysis manager bound to a different module");
  if (std::string E = validateProfilerOptions(Opts); !E.empty()) {
    fprintf(stderr, "error: invalid profiler options (%s): %s\n",
            Opts.Name.c_str(), E.c_str());
    exit(1);
  }
  FAM.setAdvice(&EP);

  InstrumentationResult Result;
  Result.Instrumented = M; // Deep copy; lowering rewrites it in place.
  Result.Instrumented.Name = M.Name + "." + Opts.Name;
  Result.Options = Opts;
  Result.Plans.resize(M.numFunctions());

  auto St = std::make_shared<InstrumentState>();
  St->Opts = &Opts;
  St->Result = &Result;
  St->TotalUnitFlow = totalProgramUnitFlow(M, EP);
  St->Funcs.resize(M.numFunctions());

  ModulePassManager MPM;
  MPM.addPass(std::make_unique<GateStage>(St));
  MPM.addPass(std::make_unique<PlanStage>(St));
  MPM.addPass(std::make_unique<CountStage>(St));
  MPM.addPass(std::make_unique<PlaceStage>(St));
  MPM.addPass(std::make_unique<LowerStage>(St));

  PassContext Ctx;
  MPM.run(Result.Instrumented, FAM, Ctx); // Stages never set Ctx.Error.
  return Result;
}

InstrumentationResult ppp::instrumentModule(const Module &M,
                                            const EdgeProfile &EP,
                                            const ProfilerOptions &Opts) {
  FunctionAnalysisManager FAM(M, &EP);
  return instrumentModule(M, EP, Opts, FAM);
}
