//===- pass/PassManager.h - Module pass manager ----------------*- C++ -*-===//
///
/// \file
/// Runs a sequence of ModulePasses over one module, applying each
/// pass's PreservedAnalyses report to the FunctionAnalysisManager so
/// caches are invalidated exactly where a transform touched the module.
///
/// Instrumented for observability: every pass run is timed and recorded
/// in the process-wide obs metrics registry (obs/Obs.h) under
/// pass.<name>.* (invocations, wall time, analyses computed vs served
/// from cache, functions preserved/skipped), and emitted as a trace
/// span when PPP_TRACE is active. Set PPP_PASS_STATS=1 to dump the
/// aggregated table (a view over the registry) to stderr at process
/// exit -- stderr, so the experiment stdout byte-identity contract is
/// untouched.
///
/// With VerifyEach enabled the manager re-verifies the module after
/// every pass that did not preserve all analyses (i.e. after every
/// transform), turning IR corruption into an immediate, named failure
/// instead of a downstream mystery.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PASS_PASSMANAGER_H
#define PPP_PASS_PASSMANAGER_H

#include "pass/Pass.h"

#include <memory>
#include <string>
#include <vector>

namespace ppp {

class ModulePassManager {
public:
  explicit ModulePassManager(bool VerifyEach = false)
      : VerifyEach(VerifyEach) {}

  void addPass(std::unique_ptr<ModulePass> P) {
    Passes.push_back(std::move(P));
  }

  size_t size() const { return Passes.size(); }

  /// The comma-joined pass names; parsePipeline() round-trips this.
  std::string printPipeline() const;

  /// Runs the passes in order. Stops at the first pass that sets
  /// Ctx.Error (or, with VerifyEach, the first transform after which
  /// the module fails verification) and returns false; returns true if
  /// every pass ran clean.
  bool run(Module &M, FunctionAnalysisManager &FAM, PassContext &Ctx);

private:
  std::vector<std::unique_ptr<ModulePass>> Passes;
  bool VerifyEach;
};

/// True when PPP_PASS_STATS=1: pass runs are aggregated and dumped to
/// stderr at exit.
bool passStatsEnabled();

/// Records one pass run in the obs metrics registry (pass.<name>.*
/// counters, keyed by pass name, first-seen order). Always recorded --
/// the registry write is a few relaxed atomic adds -- so the PPP_METRICS
/// run report covers passes even when the stderr table is off.
void recordPassRun(const std::string &Name, uint64_t WallNanos,
                   uint64_t AnalysesComputed, uint64_t AnalysesCached,
                   uint64_t FunctionsPreserved, uint64_t FunctionsSkipped);

} // namespace ppp

#endif // PPP_PASS_PASSMANAGER_H
