//===- pass/AnalysisManager.cpp - Per-function analysis cache ----------------===//

#include "pass/AnalysisManager.h"

#include "flow/FlowAnalysis.h"

#include <cstdio>
#include <cstdlib>

using namespace ppp;

const char *ppp::analysisKindName(AnalysisKind K) {
  switch (K) {
  case AnalysisKind::Cfg:
    return "cfg";
  case AnalysisKind::Doms:
    return "doms";
  case AnalysisKind::Loops:
    return "loops";
  case AnalysisKind::Static:
    return "static-profile";
  case AnalysisKind::ProfiledDag:
    return "profiled-dag";
  }
  return "?";
}

FunctionAnalysisManager::FunctionAnalysisManager(const Module &M,
                                                 const EdgeProfile *Advice)
    : M(&M), Advice(Advice), Entries(M.numFunctions()) {}

FunctionAnalysisManager::FunctionEntry &
FunctionAnalysisManager::entry(FuncId F) {
  return Entries[static_cast<size_t>(F)];
}

void FunctionAnalysisManager::count(AnalysisKind K, bool Hit) {
  AnalysisStats &S = Stats[static_cast<size_t>(K)];
  if (Hit)
    ++S.CacheHits;
  else
    ++S.Computed;
}

std::shared_ptr<const CfgView> FunctionAnalysisManager::cfg(FuncId F) {
  FunctionEntry &E = entry(F);
  if (E.Cfg) {
    count(AnalysisKind::Cfg, true);
    return E.Cfg;
  }
  E.Cfg = std::make_shared<const CfgView>(M->function(F));
  count(AnalysisKind::Cfg, false);
  return E.Cfg;
}

std::shared_ptr<const Dominators> FunctionAnalysisManager::dominators(FuncId F) {
  FunctionEntry &E = entry(F);
  if (E.Doms) {
    count(AnalysisKind::Doms, true);
    return E.Doms;
  }
  std::shared_ptr<const CfgView> Cfg = cfg(F);
  E.Doms = std::make_shared<const Dominators>(Dominators::compute(*Cfg));
  count(AnalysisKind::Doms, false);
  return E.Doms;
}

std::shared_ptr<const LoopInfo> FunctionAnalysisManager::loops(FuncId F) {
  FunctionEntry &E = entry(F);
  if (E.Loops) {
    count(AnalysisKind::Loops, true);
    return E.Loops;
  }
  std::shared_ptr<const CfgView> Cfg = cfg(F);
  // Hand over the dominator tree only when it is already cached:
  // loop-free functions never need one, and LoopInfo computes it lazily
  // for itself otherwise.
  E.Loops =
      std::make_shared<const LoopInfo>(LoopInfo::compute(*Cfg, E.Doms.get()));
  count(AnalysisKind::Loops, false);
  return E.Loops;
}

std::shared_ptr<const StaticProfile>
FunctionAnalysisManager::staticProfile(FuncId F) {
  FunctionEntry &E = entry(F);
  if (E.Static) {
    count(AnalysisKind::Static, true);
    return E.Static;
  }
  std::shared_ptr<const CfgView> Cfg = cfg(F);
  std::shared_ptr<const LoopInfo> LI = loops(F);
  E.Static = std::make_shared<const StaticProfile>(
      estimateStaticProfile(*Cfg, *LI));
  count(AnalysisKind::Static, false);
  return E.Static;
}

std::shared_ptr<const ProfiledDag>
FunctionAnalysisManager::profiledDag(FuncId F) {
  FunctionEntry &E = entry(F);
  if (E.Dag) {
    count(AnalysisKind::ProfiledDag, true);
    return E.Dag;
  }
  if (!Advice) {
    fprintf(stderr, "error: FunctionAnalysisManager: profiled-dag analysis "
                    "requested with no advice edge profile bound\n");
    abort();
  }
  std::shared_ptr<const CfgView> Cfg = cfg(F);
  std::shared_ptr<const LoopInfo> LI = loops(F);
  const FunctionEdgeProfile &FP = Advice->func(F);

  auto D = std::make_shared<ProfiledDag>();
  D->Cfg = Cfg;
  D->Dag = BLDag::build(*Cfg, *LI);
  std::vector<int64_t> CfgFreq(FP.EdgeFreq.begin(), FP.EdgeFreq.end());
  D->Dag.setFrequencies(CfgFreq, FP.Invocations);
  D->Num = assignPathNumbers(D->Dag, NumberingOrder::BallLarus);

  FlowResult DF = computeDefiniteFlow(D->Dag);
  int64_t ActualFlow = 0;
  for (const DagEdge &DE : D->Dag.edges())
    if (DE.IsBranch)
      ActualFlow += DE.Freq;
  D->BranchCoverage =
      ActualFlow == 0
          ? 1.0
          : static_cast<double>(
                DF.totalFlowAtEntry(D->Dag, FlowMetric::Branch)) /
                static_cast<double>(ActualFlow);

  E.Dag = D;
  count(AnalysisKind::ProfiledDag, false);
  return E.Dag;
}

void FunctionAnalysisManager::setAdvice(const EdgeProfile *EP) {
  if (EP == Advice)
    return; // Same profile object: everything derived from it stands.
  Advice = EP;
  for (FunctionEntry &E : Entries)
    if (E.Dag) {
      E.Dag.reset();
      ++Invalidations;
    }
}

void FunctionAnalysisManager::invalidate(FuncId F) {
  FunctionEntry &E = entry(F);
  if (E.Cfg || E.Doms || E.Loops || E.Static || E.Dag)
    ++Invalidations;
  E = FunctionEntry();
}

void FunctionAnalysisManager::invalidateAll() {
  for (unsigned FI = 0; FI < M->numFunctions(); ++FI)
    invalidate(static_cast<FuncId>(FI));
}

AnalysisStats FunctionAnalysisManager::totals() const {
  AnalysisStats T;
  for (const AnalysisStats &S : Stats) {
    T.Computed += S.Computed;
    T.CacheHits += S.CacheHits;
  }
  return T;
}
