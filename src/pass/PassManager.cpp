//===- pass/PassManager.cpp - Module pass manager --------------------------===//

#include "pass/PassManager.h"

#include "ir/Verifier.h"
#include "pass/AnalysisManager.h"
#include "support/Format.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace ppp;

//===----------------------------------------------------------------------===//
// Process-wide pass statistics (PPP_PASS_STATS=1)
//===----------------------------------------------------------------------===//

namespace {

struct PassStatRow {
  std::string Name;
  uint64_t Invocations = 0;
  uint64_t WallNanos = 0;
  uint64_t AnalysesComputed = 0;
  uint64_t AnalysesCached = 0;
  uint64_t FunctionsPreserved = 0;
  uint64_t FunctionsSkipped = 0;
};

// The experiment drivers run benchmarks on worker threads, each with
// its own pass manager; the registry is the one shared point.
std::mutex StatsMutex;
std::vector<PassStatRow> &statsRows() {
  static std::vector<PassStatRow> Rows;
  return Rows;
}

void printStatsTable() {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  const std::vector<PassStatRow> &Rows = statsRows();
  if (Rows.empty())
    return;
  fprintf(stderr, "\n=== pass statistics (PPP_PASS_STATS) ===\n");
  fprintf(stderr, "%-24s %8s %10s %10s %10s %10s %9s\n", "pass", "runs",
          "wall-ms", "computed", "cached", "preserved", "skipped");
  PassStatRow Total;
  for (const PassStatRow &R : Rows) {
    fprintf(stderr, "%-24s %8llu %10.2f %10llu %10llu %10llu %9llu\n",
            R.Name.c_str(), static_cast<unsigned long long>(R.Invocations),
            static_cast<double>(R.WallNanos) / 1e6,
            static_cast<unsigned long long>(R.AnalysesComputed),
            static_cast<unsigned long long>(R.AnalysesCached),
            static_cast<unsigned long long>(R.FunctionsPreserved),
            static_cast<unsigned long long>(R.FunctionsSkipped));
    Total.Invocations += R.Invocations;
    Total.WallNanos += R.WallNanos;
    Total.AnalysesComputed += R.AnalysesComputed;
    Total.AnalysesCached += R.AnalysesCached;
    Total.FunctionsPreserved += R.FunctionsPreserved;
    Total.FunctionsSkipped += R.FunctionsSkipped;
  }
  fprintf(stderr, "%-24s %8llu %10.2f %10llu %10llu %10llu %9llu\n", "total",
          static_cast<unsigned long long>(Total.Invocations),
          static_cast<double>(Total.WallNanos) / 1e6,
          static_cast<unsigned long long>(Total.AnalysesComputed),
          static_cast<unsigned long long>(Total.AnalysesCached),
          static_cast<unsigned long long>(Total.FunctionsPreserved),
          static_cast<unsigned long long>(Total.FunctionsSkipped));
}

} // namespace

bool ppp::passStatsEnabled() {
  static bool Enabled = [] {
    const char *V = std::getenv("PPP_PASS_STATS");
    return V && std::strcmp(V, "0") != 0 && *V != '\0';
  }();
  return Enabled;
}

void ppp::recordPassRun(const std::string &Name, uint64_t WallNanos,
                        uint64_t AnalysesComputed, uint64_t AnalysesCached,
                        uint64_t FunctionsPreserved,
                        uint64_t FunctionsSkipped) {
  if (!passStatsEnabled())
    return;
  std::lock_guard<std::mutex> Lock(StatsMutex);
  std::vector<PassStatRow> &Rows = statsRows();
  if (Rows.empty())
    std::atexit(printStatsTable);
  PassStatRow *Row = nullptr;
  for (PassStatRow &R : Rows)
    if (R.Name == Name) {
      Row = &R;
      break;
    }
  if (!Row) {
    Rows.emplace_back();
    Row = &Rows.back();
    Row->Name = Name;
  }
  ++Row->Invocations;
  Row->WallNanos += WallNanos;
  Row->AnalysesComputed += AnalysesComputed;
  Row->AnalysesCached += AnalysesCached;
  Row->FunctionsPreserved += FunctionsPreserved;
  Row->FunctionsSkipped += FunctionsSkipped;
}

//===----------------------------------------------------------------------===//
// ModulePassManager
//===----------------------------------------------------------------------===//

std::string ModulePassManager::printPipeline() const {
  std::string Out;
  for (const std::unique_ptr<ModulePass> &P : Passes) {
    if (!Out.empty())
      Out += ",";
    Out += P->name();
  }
  return Out;
}

bool ModulePassManager::run(Module &M, FunctionAnalysisManager &FAM,
                            PassContext &Ctx) {
  for (const std::unique_ptr<ModulePass> &P : Passes) {
    AnalysisStats Before = FAM.totals();
    uint64_t SkippedBefore = Ctx.FunctionsSkipped;
    auto T0 = std::chrono::steady_clock::now();

    PreservedAnalyses PA = P->run(M, FAM, Ctx);

    auto T1 = std::chrono::steady_clock::now();
    AnalysisStats After = FAM.totals();

    uint64_t Preserved;
    if (PA.preservedAll()) {
      Preserved = M.numFunctions();
    } else if (PA.preservedNone()) {
      FAM.invalidateAll();
      Preserved = 0;
    } else {
      for (FuncId F : PA.modifiedFunctions())
        FAM.invalidate(F);
      Preserved = M.numFunctions() - PA.modifiedFunctions().size();
    }

    recordPassRun(
        P->name(),
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
                .count()),
        After.Computed - Before.Computed, After.CacheHits - Before.CacheHits,
        Preserved, Ctx.FunctionsSkipped - SkippedBefore);

    if (!Ctx.Error.empty())
      return false;

    if (VerifyEach && !PA.preservedAll()) {
      std::string Err = verifyModule(M);
      if (!Err.empty()) {
        Ctx.Error = formatString("after pass '%s': %s", P->name().c_str(),
                                 Err.c_str());
        return false;
      }
    }
  }
  return true;
}
