//===- pass/PassManager.cpp - Module pass manager --------------------------===//

#include "pass/PassManager.h"

#include "ir/Verifier.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "pass/AnalysisManager.h"
#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace ppp;

//===----------------------------------------------------------------------===//
// Process-wide pass statistics
//===----------------------------------------------------------------------===//
//
// Every pass run is recorded in the obs metrics registry under
// pass.<name>.{runs,wall_ns,analyses.computed,analyses.cached,
// functions.preserved,functions.skipped}, so pass telemetry flows into
// the PPP_METRICS run report like every other subsystem's. The
// PPP_PASS_STATS=1 at-exit table is now just a stderr *view* over the
// registry, printed in first-recorded pass order (the historical
// format, unchanged).

namespace {

void printStatsTable() {
  obs::MetricsSnapshot Snap = obs::snapshot();

  // Rebuild the per-pass rows from the registry: every "pass.<name>.runs"
  // counter anchors one row, ordered by registration (= first-recorded)
  // order, which is what the bespoke table printed historically.
  struct Row {
    std::string Name;
    uint64_t RegOrder;
  };
  std::vector<Row> Rows;
  for (const obs::SnapshotEntry &E : Snap.Entries) {
    constexpr const char Prefix[] = "pass.";
    constexpr const char Suffix[] = ".runs";
    if (E.Name.size() > sizeof(Prefix) + sizeof(Suffix) - 2 &&
        E.Name.rfind(Prefix, 0) == 0 &&
        E.Name.compare(E.Name.size() - (sizeof(Suffix) - 1),
                       sizeof(Suffix) - 1, Suffix) == 0)
      Rows.push_back({E.Name.substr(sizeof(Prefix) - 1,
                                    E.Name.size() - sizeof(Prefix) -
                                        sizeof(Suffix) + 2),
                      E.RegOrder});
  }
  if (Rows.empty())
    return;
  std::sort(Rows.begin(), Rows.end(),
            [](const Row &A, const Row &B) { return A.RegOrder < B.RegOrder; });

  fprintf(stderr, "\n=== pass statistics (PPP_PASS_STATS) ===\n");
  fprintf(stderr, "%-24s %8s %10s %10s %10s %10s %9s\n", "pass", "runs",
          "wall-ms", "computed", "cached", "preserved", "skipped");
  uint64_t Total[6] = {};
  for (const Row &R : Rows) {
    const std::string Base = "pass." + R.Name + ".";
    uint64_t V[6] = {Snap.counter(Base + "runs"),
                     Snap.counter(Base + "wall_ns"),
                     Snap.counter(Base + "analyses.computed"),
                     Snap.counter(Base + "analyses.cached"),
                     Snap.counter(Base + "functions.preserved"),
                     Snap.counter(Base + "functions.skipped")};
    fprintf(stderr, "%-24s %8llu %10.2f %10llu %10llu %10llu %9llu\n",
            R.Name.c_str(), static_cast<unsigned long long>(V[0]),
            static_cast<double>(V[1]) / 1e6,
            static_cast<unsigned long long>(V[2]),
            static_cast<unsigned long long>(V[3]),
            static_cast<unsigned long long>(V[4]),
            static_cast<unsigned long long>(V[5]));
    for (int I = 0; I < 6; ++I)
      Total[I] += V[I];
  }
  fprintf(stderr, "%-24s %8llu %10.2f %10llu %10llu %10llu %9llu\n", "total",
          static_cast<unsigned long long>(Total[0]),
          static_cast<double>(Total[1]) / 1e6,
          static_cast<unsigned long long>(Total[2]),
          static_cast<unsigned long long>(Total[3]),
          static_cast<unsigned long long>(Total[4]),
          static_cast<unsigned long long>(Total[5]));
}

} // namespace

bool ppp::passStatsEnabled() {
  static bool Enabled = [] {
    const char *V = std::getenv("PPP_PASS_STATS");
    return V && std::strcmp(V, "0") != 0 && *V != '\0';
  }();
  return Enabled;
}

void ppp::recordPassRun(const std::string &Name, uint64_t WallNanos,
                        uint64_t AnalysesComputed, uint64_t AnalysesCached,
                        uint64_t FunctionsPreserved,
                        uint64_t FunctionsSkipped) {
  if (passStatsEnabled()) {
    static std::once_flag Once;
    std::call_once(Once, [] { std::atexit(printStatsTable); });
  }
  const std::string Base = "pass." + Name + ".";
  obs::counter(Base + "runs").inc();
  obs::counter(Base + "wall_ns").inc(WallNanos);
  obs::counter(Base + "analyses.computed").inc(AnalysesComputed);
  obs::counter(Base + "analyses.cached").inc(AnalysesCached);
  obs::counter(Base + "functions.preserved").inc(FunctionsPreserved);
  obs::counter(Base + "functions.skipped").inc(FunctionsSkipped);
}

//===----------------------------------------------------------------------===//
// ModulePassManager
//===----------------------------------------------------------------------===//

std::string ModulePassManager::printPipeline() const {
  std::string Out;
  for (const std::unique_ptr<ModulePass> &P : Passes) {
    if (!Out.empty())
      Out += ",";
    Out += P->name();
  }
  return Out;
}

bool ModulePassManager::run(Module &M, FunctionAnalysisManager &FAM,
                            PassContext &Ctx) {
  for (const std::unique_ptr<ModulePass> &P : Passes) {
    AnalysisStats Before = FAM.totals();
    uint64_t SkippedBefore = Ctx.FunctionsSkipped;
    obs::ScopedSpan Span("pass:", P->name(), "pass");
    auto T0 = std::chrono::steady_clock::now();

    PreservedAnalyses PA = P->run(M, FAM, Ctx);

    auto T1 = std::chrono::steady_clock::now();
    AnalysisStats After = FAM.totals();

    uint64_t Preserved;
    if (PA.preservedAll()) {
      Preserved = M.numFunctions();
    } else if (PA.preservedNone()) {
      FAM.invalidateAll();
      Preserved = 0;
    } else {
      for (FuncId F : PA.modifiedFunctions())
        FAM.invalidate(F);
      Preserved = M.numFunctions() - PA.modifiedFunctions().size();
    }

    recordPassRun(
        P->name(),
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
                .count()),
        After.Computed - Before.Computed, After.CacheHits - Before.CacheHits,
        Preserved, Ctx.FunctionsSkipped - SkippedBefore);

    if (!Ctx.Error.empty())
      return false;

    if (VerifyEach && !PA.preservedAll()) {
      std::string Err = verifyModule(M);
      if (!Err.empty()) {
        Ctx.Error = formatString("after pass '%s': %s", P->name().c_str(),
                                 Err.c_str());
        return false;
      }
    }
  }
  return true;
}
