//===- pass/Pass.h - Module pass interface and PreservedAnalyses -*- C++ -*-===//
///
/// \file
/// The pass protocol the pipeline layer is built on. A ModulePass runs
/// over one module with access to the FunctionAnalysisManager (cached
/// analyses, advice profile) and the PassContext (pipeline-wide inputs
/// and accumulating outputs), and reports which cached analyses its run
/// left valid via PreservedAnalyses:
///
///  - an analysis-only or report-only pass preserves everything;
///  - a transform that touched specific functions preserves everything
///    except those functions' analyses;
///  - a module-wide structural change preserves nothing.
///
/// The ModulePassManager applies the report to the analysis manager, so
/// passes never invalidate caches by hand and unchanged functions keep
/// their analyses across the whole pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PASS_PASS_H
#define PPP_PASS_PASS_H

#include "interp/CostModel.h"
#include "ir/Module.h"
#include "opt/Inliner.h"
#include "opt/Unroller.h"
#include "pathprof/Profilers.h"
#include "profile/EdgeProfile.h"
#include "profile/PathProfile.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>

namespace ppp {

class FunctionAnalysisManager;

/// What a pass run left valid in the analysis cache.
class PreservedAnalyses {
public:
  /// Nothing changed (analysis passes, report passes).
  static PreservedAnalyses all() { return PreservedAnalyses(true, {}); }

  /// Module-wide structural change: drop every cached analysis.
  static PreservedAnalyses none() { return PreservedAnalyses(false, {}); }

  /// A transform modified exactly \p Modified; everything else stands.
  static PreservedAnalyses
  allExceptFunctions(std::set<FuncId> Modified) {
    return PreservedAnalyses(false, std::move(Modified));
  }

  bool preservedAll() const { return All; }
  /// Meaningful when !preservedAll(): empty set means "none preserved".
  const std::set<FuncId> &modifiedFunctions() const { return Modified; }
  /// True for the none() report (invalidate the whole module).
  bool preservedNone() const { return !All && Modified.empty(); }

private:
  PreservedAnalyses(bool All, std::set<FuncId> Modified)
      : All(All), Modified(std::move(Modified)) {}

  bool All;
  std::set<FuncId> Modified;
};

/// One clean profiling run of the module at some pipeline point: the
/// edge profile (the advice), the oracle path profile, and the run's
/// cost/instruction counts under the cost model the profile pass used.
struct ProfileSnapshot {
  EdgeProfile EP;
  PathProfile Oracle;
  uint64_t Cost = 0;
  uint64_t DynInstrs = 0;

  ProfileSnapshot() : Oracle(0) {}
};

/// Pipeline-wide inputs and accumulating outputs, owned by the driver
/// and threaded through every pass. Profile snapshots live in a deque
/// so their addresses stay stable: the analysis manager keeps a pointer
/// to the newest snapshot's edge profile as its advice.
struct PassContext {
  // Inputs.
  CostModel StdCosts;         ///< Intermediate "profile" runs.
  CostModel BenchCosts;       ///< Final "profile<bench>" run.
  bool AllowInlining = true;  ///< false: count-only inliner run.
  InlinerOptions InlineOpts;
  UnrollerOptions UnrollOpts;

  // Outputs.
  std::deque<ProfileSnapshot> Profiles; ///< One per profile pass, in order.
  InlineStats Inline;
  UnrollStats Unroll;
  std::unique_ptr<InstrumentationResult> Instr; ///< From an instrument pass.

  /// First error; the pass manager stops the pipeline when set.
  std::string Error;

  /// Functions a gating pass decided not to process (reported per pass
  /// in the PPP_PASS_STATS table).
  uint64_t FunctionsSkipped = 0;
};

/// A unit of pipeline work over one module.
class ModulePass {
public:
  virtual ~ModulePass() = default;

  /// The pass's pipeline-spec token (e.g. "inline", "instrument<ppp>").
  /// printPipeline() joins these, so the name must re-parse to an
  /// equivalent pass; it also keys the PPP_PASS_STATS table.
  virtual std::string name() const = 0;

  /// Runs the pass. \p M is the module being transformed; \p FAM serves
  /// cached analyses (usually over \p M -- the instrumentation stages
  /// are the exception, analyzing the advice module while lowering into
  /// a clone). On failure set Ctx.Error and return all().
  virtual PreservedAnalyses run(Module &M, FunctionAnalysisManager &FAM,
                                PassContext &Ctx) = 0;
};

} // namespace ppp

#endif // PPP_PASS_PASS_H
