//===- pass/Passes.h - Concrete pipeline passes ----------------*- C++ -*-===//
///
/// \file
/// The passes a pipeline spec can name (pass/Pipeline.h). Together they
/// cover the preparation pipeline (profile / inline / unroll / verify)
/// and instrumentation (instrument<spec>); each is a thin adapter from
/// the ModulePass protocol onto the existing transform entry points,
/// reporting precise PreservedAnalyses so the analysis manager keeps
/// caches for untouched functions.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PASS_PASSES_H
#define PPP_PASS_PASSES_H

#include "pass/Pass.h"

#include <string>
#include <utility>

namespace ppp {

/// Runs the module clean (no instrumentation) with an edge profiler and
/// the oracle path tracer attached, appends the resulting
/// ProfileSnapshot to Ctx.Profiles, and rebinds the analysis manager's
/// advice to the new edge profile. "profile" runs under Ctx.StdCosts,
/// "profile<bench>" under Ctx.BenchCosts (the final self-advice run of
/// the preparation pipeline).
class ProfilePass : public ModulePass {
public:
  explicit ProfilePass(bool UseBenchCosts) : UseBenchCosts(UseBenchCosts) {}
  std::string name() const override {
    return UseBenchCosts ? "profile<bench>" : "profile";
  }
  PreservedAnalyses run(Module &M, FunctionAnalysisManager &FAM,
                        PassContext &Ctx) override;

private:
  bool UseBenchCosts;
};

/// Profile-guided inlining on the current advice (Sec. 7.3). With
/// Ctx.AllowInlining off it still runs the inliner on a throwaway copy
/// so Ctx.Inline carries the dynamic-call counts (Table 1's "% calls
/// inlined" column) without touching the module. Preserves every
/// function the inliner did not splice into.
class InlinerPass : public ModulePass {
public:
  std::string name() const override { return "inline"; }
  PreservedAnalyses run(Module &M, FunctionAnalysisManager &FAM,
                        PassContext &Ctx) override;
};

/// Profile-guided inner-loop unrolling on the current advice
/// (Sec. 7.3). Preserves every function without an unrolled loop.
class UnrollerPass : public ModulePass {
public:
  std::string name() const override { return "unroll"; }
  PreservedAnalyses run(Module &M, FunctionAnalysisManager &FAM,
                        PassContext &Ctx) override;
};

/// Structural verification checkpoint; fails the pipeline with the
/// verifier's diagnosis.
class VerifierPass : public ModulePass {
public:
  std::string name() const override { return "verify"; }
  PreservedAnalyses run(Module &M, FunctionAnalysisManager &FAM,
                        PassContext &Ctx) override;
};

/// Path-profiling instrumentation: instrumentModule() with the options
/// of a profiler spec, against the newest profile snapshot as advice.
/// The result lands in Ctx.Instr; the pipeline module itself is not
/// modified (instrumentation lowers into a clone).
class InstrumentPass : public ModulePass {
public:
  InstrumentPass(std::string Spec, ProfilerOptions Opts)
      : Spec(std::move(Spec)), Opts(std::move(Opts)) {}
  std::string name() const override { return "instrument<" + Spec + ">"; }
  PreservedAnalyses run(Module &M, FunctionAnalysisManager &FAM,
                        PassContext &Ctx) override;

private:
  std::string Spec; ///< The profiler spec as written (round-trips).
  ProfilerOptions Opts;
};

} // namespace ppp

#endif // PPP_PASS_PASSES_H
