//===- ir/Opcode.cpp - Opcode names ---------------------------------------===//

#include "ir/Opcode.h"

using namespace ppp;

const char *ppp::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
    return "const";
  case Opcode::Mov:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::DivU:
    return "divu";
  case Opcode::RemU:
    return "remu";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::AddImm:
    return "addimm";
  case Opcode::MulImm:
    return "mulimm";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Call:
    return "call";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Switch:
    return "switch";
  case Opcode::Ret:
    return "ret";
  case Opcode::ProfSet:
    return "prof.set";
  case Opcode::ProfAdd:
    return "prof.add";
  case Opcode::ProfCountIdx:
    return "prof.count.idx";
  case Opcode::ProfCountConst:
    return "prof.count.const";
  case Opcode::ProfCheckedCountIdx:
    return "prof.count.checked";
  case Opcode::ProfChainIdx:
    return "prof.chain.idx";
  case Opcode::ProfChainConst:
    return "prof.chain.const";
  case Opcode::ProfChainRetIdx:
    return "prof.chain.ret.idx";
  case Opcode::ProfChainRetConst:
    return "prof.chain.ret.const";
  }
  return "<invalid>";
}
