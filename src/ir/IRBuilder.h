//===- ir/IRBuilder.h - Convenience IR construction ------------*- C++ -*-===//
///
/// \file
/// Builds functions instruction-by-instruction with automatic register
/// allocation. Used by tests, examples, and the workload generator.
///
/// Typical usage:
/// \code
///   Module M;
///   IRBuilder B(M);
///   FuncId F = B.beginFunction("main", 0);
///   RegId X = B.emitConst(42);
///   B.emitRet(X);
///   B.endFunction();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PPP_IR_IRBUILDER_H
#define PPP_IR_IRBUILDER_H

#include "ir/Module.h"

#include <cassert>
#include <initializer_list>
#include <string>
#include <vector>

namespace ppp {

/// Incrementally constructs functions inside a Module.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  /// Starts a new function with \p NumParams parameters; creates and
  /// selects its entry block.
  FuncId beginFunction(const std::string &Name, unsigned NumParams);

  /// Finishes the current function. Asserts that every block ends in a
  /// terminator.
  void endFunction();

  /// Allocates a fresh virtual register in the current function.
  RegId newReg();

  /// Appends a new (empty) block to the current function.
  BlockId newBlock();

  /// Directs subsequent emissions into \p BB.
  void setInsertPoint(BlockId BB) {
    assert(F && "no function under construction");
    Cur = BB;
  }

  BlockId currentBlock() const { return Cur; }
  FuncId currentFunction() const { return CurFunc; }

  // Data instructions. Each returns the destination register. Pass
  // \p Dest to write an existing register (loop counters,
  // accumulators); -1 allocates a fresh one.
  RegId emitConst(int64_t V, RegId Dest = -1);
  RegId emitMov(RegId Src, RegId Dest = -1);
  RegId emitBinary(Opcode Op, RegId Lhs, RegId Rhs, RegId Dest = -1);
  RegId emitAddImm(RegId Src, int64_t Imm, RegId Dest = -1);
  RegId emitMulImm(RegId Src, int64_t Imm, RegId Dest = -1);
  RegId emitLoad(RegId Addr, RegId Dest = -1);
  void emitStore(RegId Addr, RegId Value);
  RegId emitCall(FuncId Callee, const std::vector<RegId> &Args);

  // Terminators.
  void emitBr(BlockId Target);
  void emitCondBr(RegId Cond, BlockId TrueTarget, BlockId FalseTarget);
  void emitSwitch(RegId Selector, const std::vector<BlockId> &Targets);
  void emitRet(RegId Value);

private:
  Instr &append(Instr I);

  Module &M;
  Function *F = nullptr;
  FuncId CurFunc = -1;
  BlockId Cur = -1;
};

} // namespace ppp

#endif // PPP_IR_IRBUILDER_H
