//===- ir/Opcode.h - Instruction opcodes -----------------------*- C++ -*-===//
///
/// \file
/// Opcodes for the register-machine IR. The IR is deliberately small:
/// path profiling only cares about control-flow shape and edge
/// frequencies, so the instruction set provides just enough data flow to
/// make branch outcomes data-dependent and runs deterministic.
///
/// The four Prof* opcodes are profiling pseudo-instructions inserted by
/// instrumentation lowering (never by workload generation). They operate
/// on the per-activation path register `r` and the per-function path
/// frequency table, exactly mirroring the instrumentation forms of
/// Ball-Larus profiling after pushing and combining: `r=c`, `r+=c`,
/// `count[r+c]++`, and `count[c]++`.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_IR_OPCODE_H
#define PPP_IR_OPCODE_H

#include <cstdint>

namespace ppp {

enum class Opcode : uint8_t {
  // Data movement and arithmetic: R[A] = ...
  Const,  ///< R[A] = Imm
  Mov,    ///< R[A] = R[B]
  Add,    ///< R[A] = R[B] + R[C]
  Sub,    ///< R[A] = R[B] - R[C]
  Mul,    ///< R[A] = R[B] * R[C]
  DivU,   ///< R[A] = R[B] /u R[C]  (0 if R[C] == 0)
  RemU,   ///< R[A] = R[B] %u R[C]  (0 if R[C] == 0)
  And,    ///< R[A] = R[B] & R[C]
  Or,     ///< R[A] = R[B] | R[C]
  Xor,    ///< R[A] = R[B] ^ R[C]
  Shl,    ///< R[A] = R[B] << (R[C] & 63)
  Shr,    ///< R[A] = R[B] >>u (R[C] & 63)
  AddImm, ///< R[A] = R[B] + Imm
  MulImm, ///< R[A] = R[B] * Imm
  CmpEq,  ///< R[A] = R[B] == R[C]
  CmpNe,  ///< R[A] = R[B] != R[C]
  CmpLt,  ///< R[A] = R[B] <s R[C]
  CmpLe,  ///< R[A] = R[B] <=s R[C]

  // Memory: a single global word-addressed array per module.
  Load,  ///< R[A] = Mem[R[B] & (MemWords-1)]
  Store, ///< Mem[R[B] & (MemWords-1)] = R[A]

  // Calls: R[A] = Callee(R[Args[0..NumArgs-1]]).
  Call,

  // Terminators.
  Br,     ///< goto Targets[0]
  CondBr, ///< if R[A] != 0 goto Targets[0] else goto Targets[1]
  Switch, ///< goto Targets[R[A] %u Targets.size()]
  Ret,    ///< return R[A]

  // Profiling pseudo-instructions (see file comment).
  ProfSet,        ///< r = Imm
  ProfAdd,        ///< r += Imm
  ProfCountIdx,   ///< count[r + Imm]++
  ProfCountConst, ///< count[Imm]++
  /// Original-TPP-style counting with a poison test: if r + Imm is
  /// negative (the register was poisoned on a cold edge), bump the cold
  /// counter instead. Costs one extra unit (the compare-and-branch) --
  /// the overhead PPP's free poisoning exists to remove (Sec. 4.6).
  ProfCheckedCountIdx,

  // k-iteration chaining (D'Elia & Demetrescu): instead of counting a
  // finished Ball-Larus path segment, fold its number into the
  // per-activation chain accumulator as one base-M digit and keep
  // going, flushing a k-path id into the table every K segments. The
  // Chain forms fire on loop back edges (the segment may continue into
  // the next iteration), the ChainRet forms at returns (the activation
  // is over, so the accumulated chain always flushes).
  ProfChainIdx,      ///< chain-step with segment number r + Imm
  ProfChainConst,    ///< chain-step with constant segment number Imm
  ProfChainRetIdx,   ///< chain-flush at return, segment number r + Imm
  ProfChainRetConst, ///< chain-flush at return, constant segment Imm
};

/// Number of opcodes (for dense per-opcode tables, e.g. the dispatch
/// jump table and the interpreter's telemetry counters).
inline constexpr unsigned NumOpcodes =
    static_cast<unsigned>(Opcode::ProfChainRetConst) + 1;

/// Returns true for opcodes that end a basic block.
inline bool isTerminatorOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Switch:
  case Opcode::Ret:
    return true;
  default:
    return false;
  }
}

/// Returns true for the profiling pseudo-instructions.
inline bool isProfilingOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::ProfSet:
  case Opcode::ProfAdd:
  case Opcode::ProfCountIdx:
  case Opcode::ProfCountConst:
  case Opcode::ProfCheckedCountIdx:
  case Opcode::ProfChainIdx:
  case Opcode::ProfChainConst:
  case Opcode::ProfChainRetIdx:
  case Opcode::ProfChainRetConst:
    return true;
  default:
    return false;
  }
}

/// Returns the printable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

} // namespace ppp

#endif // PPP_IR_OPCODE_H
