//===- ir/Module.h - IR module ---------------------------------*- C++ -*-===//
///
/// \file
/// A module: a set of functions plus the size of the single global
/// word-addressed memory. Execution starts at \c MainId with no
/// arguments.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_IR_MODULE_H
#define PPP_IR_MODULE_H

#include "ir/Function.h"

#include <bit>
#include <cassert>
#include <string>
#include <vector>

namespace ppp {

/// A whole program. Modules are value types; copies are deep, which the
/// instrumenters rely on (instrument a copy, never the original).
struct Module {
  std::string Name;
  /// Global memory size in 64-bit words; must be a power of two (loads
  /// and stores mask addresses with MemWords-1).
  uint64_t MemWords = 1024;
  FuncId MainId = 0;
  std::vector<Function> Functions;

  /// Field-wise equality (serialization round-trip checks).
  bool operator==(const Module &O) const = default;

  unsigned numFunctions() const {
    return static_cast<unsigned>(Functions.size());
  }

  /// The address-space size the interpreter uses: MemWords rounded up
  /// to a power of two, never zero. The verifier rejects modules whose
  /// MemWords is not already a power of two, but execution stays
  /// well-defined (no silent aliasing) even for unverified modules.
  uint64_t addrSpaceWords() const {
    return std::bit_ceil(MemWords == 0 ? uint64_t(1) : MemWords);
  }

  const Function &function(FuncId Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Functions.size() &&
           "function id out of range");
    return Functions[static_cast<size_t>(Id)];
  }

  Function &function(FuncId Id) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Functions.size() &&
           "function id out of range");
    return Functions[static_cast<size_t>(Id)];
  }
};

} // namespace ppp

#endif // PPP_IR_MODULE_H
