//===- ir/Verifier.h - IR well-formedness checks ---------------*- C++ -*-===//
///
/// \file
/// Structural verification of modules and functions. All transformation
/// passes (inlining, unrolling, instrumentation lowering) are verified
/// before and after in tests.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_IR_VERIFIER_H
#define PPP_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>

namespace ppp {

/// Checks structural invariants of \p F within \p M (blocks terminated
/// exactly once at the end, register/target/callee indices in range,
/// call argument counts matching callee parameter counts).
/// \returns an empty string on success, otherwise the first error found.
std::string verifyFunction(const Module &M, const Function &F);

/// Verifies every function plus module-level invariants (MemWords is a
/// nonzero power of two, MainId valid and parameterless).
/// \returns an empty string on success, otherwise the first error found.
std::string verifyModule(const Module &M);

} // namespace ppp

#endif // PPP_IR_VERIFIER_H
