//===- ir/IRBuilder.cpp - Convenience IR construction ---------------------===//

#include "ir/IRBuilder.h"

using namespace ppp;

FuncId IRBuilder::beginFunction(const std::string &Name, unsigned NumParams) {
  assert(!F && "previous function not finished");
  CurFunc = static_cast<FuncId>(M.Functions.size());
  M.Functions.emplace_back();
  F = &M.Functions.back();
  F->Name = Name;
  F->NumParams = NumParams;
  F->NumRegs = NumParams;
  F->Blocks.emplace_back(); // Entry block.
  Cur = 0;
  return CurFunc;
}

void IRBuilder::endFunction() {
  assert(F && "no function under construction");
#ifndef NDEBUG
  for (const BasicBlock &BB : F->Blocks) {
    assert(!BB.Instrs.empty() && "unterminated empty block");
    assert(BB.Instrs.back().isTerminator() && "block lacks terminator");
  }
#endif
  F = nullptr;
  CurFunc = -1;
  Cur = -1;
}

RegId IRBuilder::newReg() {
  assert(F && "no function under construction");
  return static_cast<RegId>(F->NumRegs++);
}

BlockId IRBuilder::newBlock() {
  assert(F && "no function under construction");
  F->Blocks.emplace_back();
  return static_cast<BlockId>(F->Blocks.size() - 1);
}

Instr &IRBuilder::append(Instr I) {
  assert(F && "no function under construction");
  assert(Cur >= 0 && static_cast<size_t>(Cur) < F->Blocks.size() &&
         "no insert point");
  BasicBlock &BB = F->Blocks[static_cast<size_t>(Cur)];
  assert((BB.Instrs.empty() || !BB.Instrs.back().isTerminator()) &&
         "emitting past a terminator");
  BB.Instrs.push_back(std::move(I));
  return BB.Instrs.back();
}

RegId IRBuilder::emitConst(int64_t V, RegId Dest) {
  Instr I;
  I.Op = Opcode::Const;
  I.A = Dest < 0 ? newReg() : Dest;
  I.Imm = V;
  return append(std::move(I)).A;
}

RegId IRBuilder::emitMov(RegId Src, RegId Dest) {
  Instr I;
  I.Op = Opcode::Mov;
  I.A = Dest < 0 ? newReg() : Dest;
  I.B = Src;
  return append(std::move(I)).A;
}

RegId IRBuilder::emitBinary(Opcode Op, RegId Lhs, RegId Rhs, RegId Dest) {
  Instr I;
  I.Op = Op;
  I.A = Dest < 0 ? newReg() : Dest;
  I.B = Lhs;
  I.C = Rhs;
  return append(std::move(I)).A;
}

RegId IRBuilder::emitAddImm(RegId Src, int64_t Imm, RegId Dest) {
  Instr I;
  I.Op = Opcode::AddImm;
  I.A = Dest < 0 ? newReg() : Dest;
  I.B = Src;
  I.Imm = Imm;
  return append(std::move(I)).A;
}

RegId IRBuilder::emitMulImm(RegId Src, int64_t Imm, RegId Dest) {
  Instr I;
  I.Op = Opcode::MulImm;
  I.A = Dest < 0 ? newReg() : Dest;
  I.B = Src;
  I.Imm = Imm;
  return append(std::move(I)).A;
}

RegId IRBuilder::emitLoad(RegId Addr, RegId Dest) {
  Instr I;
  I.Op = Opcode::Load;
  I.A = Dest < 0 ? newReg() : Dest;
  I.B = Addr;
  return append(std::move(I)).A;
}

void IRBuilder::emitStore(RegId Addr, RegId Value) {
  Instr I;
  I.Op = Opcode::Store;
  I.A = Value;
  I.B = Addr;
  append(std::move(I));
}

RegId IRBuilder::emitCall(FuncId Callee, const std::vector<RegId> &Args) {
  assert(Args.size() <= MaxCallArgs && "too many call arguments");
  Instr I;
  I.Op = Opcode::Call;
  I.A = newReg();
  I.Callee = Callee;
  I.NumArgs = static_cast<uint8_t>(Args.size());
  for (size_t Idx = 0; Idx < Args.size(); ++Idx)
    I.Args[Idx] = Args[Idx];
  return append(std::move(I)).A;
}

void IRBuilder::emitBr(BlockId Target) {
  Instr I;
  I.Op = Opcode::Br;
  I.Targets = {Target};
  append(std::move(I));
}

void IRBuilder::emitCondBr(RegId Cond, BlockId TrueTarget,
                           BlockId FalseTarget) {
  Instr I;
  I.Op = Opcode::CondBr;
  I.A = Cond;
  I.Targets = {TrueTarget, FalseTarget};
  append(std::move(I));
}

void IRBuilder::emitSwitch(RegId Selector,
                           const std::vector<BlockId> &Targets) {
  assert(!Targets.empty() && "switch needs at least one target");
  Instr I;
  I.Op = Opcode::Switch;
  I.A = Selector;
  I.Targets = Targets;
  append(std::move(I));
}

void IRBuilder::emitRet(RegId Value) {
  Instr I;
  I.Op = Opcode::Ret;
  I.A = Value;
  append(std::move(I));
}
