//===- ir/Printer.cpp - Textual IR dumps ----------------------------------===//

#include "ir/Printer.h"

#include "support/Format.h"

using namespace ppp;

std::string ppp::printInstr(const Instr &I) {
  switch (I.Op) {
  case Opcode::Const:
    return formatString("r%d = const %lld", I.A, (long long)I.Imm);
  case Opcode::Mov:
    return formatString("r%d = mov r%d", I.A, I.B);
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::DivU:
  case Opcode::RemU:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
    return formatString("r%d = %s r%d, r%d", I.A, opcodeName(I.Op), I.B, I.C);
  case Opcode::AddImm:
    return formatString("r%d = addimm r%d, %lld", I.A, I.B, (long long)I.Imm);
  case Opcode::MulImm:
    return formatString("r%d = mulimm r%d, %lld", I.A, I.B, (long long)I.Imm);
  case Opcode::Load:
    return formatString("r%d = load [r%d]", I.A, I.B);
  case Opcode::Store:
    return formatString("store [r%d], r%d", I.B, I.A);
  case Opcode::Call: {
    std::string S = formatString("r%d = call f%d(", I.A, I.Callee);
    for (unsigned Idx = 0; Idx < I.NumArgs; ++Idx) {
      if (Idx)
        S += ", ";
      S += formatString("r%d", I.Args[Idx]);
    }
    S += ")";
    return S;
  }
  case Opcode::Br:
    return formatString("br b%d", I.Targets[0]);
  case Opcode::CondBr:
    return formatString("condbr r%d, b%d, b%d", I.A, I.Targets[0],
                        I.Targets[1]);
  case Opcode::Switch: {
    std::string S = formatString("switch r%d, [", I.A);
    for (size_t Idx = 0; Idx < I.Targets.size(); ++Idx) {
      if (Idx)
        S += ", ";
      S += formatString("b%d", I.Targets[Idx]);
    }
    S += "]";
    return S;
  }
  case Opcode::Ret:
    return formatString("ret r%d", I.A);
  case Opcode::ProfSet:
    return formatString("prof.set %lld", (long long)I.Imm);
  case Opcode::ProfAdd:
    return formatString("prof.add %lld", (long long)I.Imm);
  case Opcode::ProfCountIdx:
    return formatString("prof.count.idx %lld", (long long)I.Imm);
  case Opcode::ProfCountConst:
    return formatString("prof.count.const %lld", (long long)I.Imm);
  case Opcode::ProfCheckedCountIdx:
    return formatString("prof.count.checked %lld", (long long)I.Imm);
  case Opcode::ProfChainIdx:
    return formatString("prof.chain.idx %lld", (long long)I.Imm);
  case Opcode::ProfChainConst:
    return formatString("prof.chain.const %lld", (long long)I.Imm);
  case Opcode::ProfChainRetIdx:
    return formatString("prof.chain.ret.idx %lld", (long long)I.Imm);
  case Opcode::ProfChainRetConst:
    return formatString("prof.chain.ret.const %lld", (long long)I.Imm);
  }
  return "<invalid>";
}

std::string ppp::printFunction(const Function &F) {
  std::string S = formatString("func @%s(params=%u, regs=%u) {\n",
                               F.Name.c_str(), F.NumParams, F.NumRegs);
  for (size_t B = 0; B < F.Blocks.size(); ++B) {
    S += formatString("b%zu:\n", B);
    for (const Instr &I : F.Blocks[B].Instrs)
      S += "  " + printInstr(I) + "\n";
  }
  S += "}\n";
  return S;
}

std::string ppp::printModule(const Module &M) {
  std::string S = formatString("module %s (mem=%llu words, main=f%d)\n",
                               M.Name.c_str(), (unsigned long long)M.MemWords,
                               M.MainId);
  for (size_t FI = 0; FI < M.Functions.size(); ++FI) {
    S += formatString("; f%zu\n", FI);
    S += printFunction(M.Functions[FI]);
  }
  return S;
}
