//===- ir/Printer.h - Textual IR dumps -------------------------*- C++ -*-===//
///
/// \file
/// Human-readable textual dumps of functions and modules, for debugging
/// and golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_IR_PRINTER_H
#define PPP_IR_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace ppp {

/// Renders one instruction, e.g. "r3 = add r1, r2".
std::string printInstr(const Instr &I);

/// Renders a function with labeled blocks.
std::string printFunction(const Function &F);

/// Renders the whole module.
std::string printModule(const Module &M);

} // namespace ppp

#endif // PPP_IR_PRINTER_H
