//===- ir/Function.h - IR function -----------------------------*- C++ -*-===//
///
/// \file
/// A function: a named CFG of basic blocks plus a frame layout. Block 0
/// is the entry block. Parameters arrive in registers [0, NumParams).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_IR_FUNCTION_H
#define PPP_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <cassert>
#include <string>
#include <vector>

namespace ppp {

/// A function body. Functions are value types; copies are deep.
struct Function {
  std::string Name;
  unsigned NumParams = 0; ///< Parameters arrive in R[0..NumParams-1].
  unsigned NumRegs = 0;   ///< Frame size in registers (>= NumParams).
  std::vector<BasicBlock> Blocks;

  /// Field-wise equality (serialization round-trip checks).
  bool operator==(const Function &O) const = default;

  BlockId entryBlock() const { return 0; }

  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }

  const BasicBlock &block(BlockId Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Blocks.size() &&
           "block id out of range");
    return Blocks[static_cast<size_t>(Id)];
  }

  BasicBlock &block(BlockId Id) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Blocks.size() &&
           "block id out of range");
    return Blocks[static_cast<size_t>(Id)];
  }

  /// Total instruction count (the "IR statements" size measure used by
  /// the inliner and unroller size caps).
  unsigned size() const {
    unsigned N = 0;
    for (const BasicBlock &BB : Blocks)
      N += static_cast<unsigned>(BB.Instrs.size());
    return N;
  }
};

} // namespace ppp

#endif // PPP_IR_FUNCTION_H
