//===- ir/Instr.h - IR instruction -----------------------------*- C++ -*-===//
///
/// \file
/// A single IR instruction. Instructions are plain values; a Function
/// owns its instructions by value inside its blocks, so copying a
/// Function deep-copies the whole body (used by the inliner, unroller,
/// and instrumentation, which all work on clones).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_IR_INSTR_H
#define PPP_IR_INSTR_H

#include "ir/Opcode.h"

#include <array>
#include <cstdint>
#include <vector>

namespace ppp {

/// Index of a virtual register within a function frame.
using RegId = int32_t;
/// Index of a basic block within a function.
using BlockId = int32_t;
/// Index of a function within a module.
using FuncId = int32_t;

/// Maximum number of call arguments.
inline constexpr unsigned MaxCallArgs = 4;

/// A single register-machine instruction. Field use depends on Op; see
/// Opcode.h for per-opcode semantics.
struct Instr {
  Opcode Op = Opcode::Const;
  uint8_t NumArgs = 0; ///< Call only: number of arguments passed.
  RegId A = -1;        ///< Destination (or source for Store/Ret/branch cond).
  RegId B = -1;        ///< First operand.
  RegId C = -1;        ///< Second operand.
  int64_t Imm = 0;     ///< Immediate (Const, AddImm, MulImm, Prof*).
  FuncId Callee = -1;  ///< Call only.
  std::array<RegId, MaxCallArgs> Args = {-1, -1, -1, -1};
  std::vector<BlockId> Targets; ///< Terminators only.

  bool isTerminator() const { return isTerminatorOpcode(Op); }
  bool isProfiling() const { return isProfilingOpcode(Op); }

  /// Field-wise equality (serialization round-trip checks).
  bool operator==(const Instr &O) const = default;
};

} // namespace ppp

#endif // PPP_IR_INSTR_H
