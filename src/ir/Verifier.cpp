//===- ir/Verifier.cpp - IR well-formedness checks ------------------------===//

#include "ir/Verifier.h"

#include "support/Format.h"

using namespace ppp;

namespace {

/// Verifies one instruction; returns an error string or empty.
std::string verifyInstr(const Module &M, const Function &F, BlockId BB,
                        size_t Idx, const Instr &I) {
  auto Err = [&](const char *Msg) {
    return formatString("%s: block b%d, instr %zu (%s): %s", F.Name.c_str(),
                        BB, Idx, opcodeName(I.Op), Msg);
  };
  auto RegOk = [&](RegId R) {
    return R >= 0 && static_cast<unsigned>(R) < F.NumRegs;
  };
  auto TargetOk = [&](BlockId T) {
    return T >= 0 && static_cast<size_t>(T) < F.Blocks.size();
  };

  switch (I.Op) {
  case Opcode::Const:
    if (!RegOk(I.A))
      return Err("destination register out of range");
    break;
  case Opcode::Mov:
  case Opcode::AddImm:
  case Opcode::MulImm:
  case Opcode::Load:
    if (!RegOk(I.A) || !RegOk(I.B))
      return Err("register out of range");
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::DivU:
  case Opcode::RemU:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
    if (!RegOk(I.A) || !RegOk(I.B) || !RegOk(I.C))
      return Err("register out of range");
    break;
  case Opcode::Store:
    if (!RegOk(I.A) || !RegOk(I.B))
      return Err("register out of range");
    break;
  case Opcode::Call: {
    if (!RegOk(I.A))
      return Err("result register out of range");
    if (I.Callee < 0 || static_cast<size_t>(I.Callee) >= M.Functions.size())
      return Err("callee out of range");
    if (I.NumArgs > MaxCallArgs)
      return Err("too many arguments");
    const Function &Callee = M.function(I.Callee);
    if (I.NumArgs != Callee.NumParams)
      return Err("argument count does not match callee parameter count");
    for (unsigned ArgIdx = 0; ArgIdx < I.NumArgs; ++ArgIdx)
      if (!RegOk(I.Args[ArgIdx]))
        return Err("argument register out of range");
    break;
  }
  case Opcode::Br:
    if (I.Targets.size() != 1 || !TargetOk(I.Targets[0]))
      return Err("br needs exactly one valid target");
    break;
  case Opcode::CondBr:
    if (!RegOk(I.A))
      return Err("condition register out of range");
    if (I.Targets.size() != 2 || !TargetOk(I.Targets[0]) ||
        !TargetOk(I.Targets[1]))
      return Err("condbr needs exactly two valid targets");
    break;
  case Opcode::Switch:
    if (!RegOk(I.A))
      return Err("selector register out of range");
    if (I.Targets.empty())
      return Err("switch needs at least one target");
    for (BlockId T : I.Targets)
      if (!TargetOk(T))
        return Err("switch target out of range");
    break;
  case Opcode::Ret:
    if (!RegOk(I.A))
      return Err("return register out of range");
    break;
  case Opcode::ProfSet:
  case Opcode::ProfAdd:
  case Opcode::ProfCountIdx:
  case Opcode::ProfCountConst:
  case Opcode::ProfCheckedCountIdx:
  case Opcode::ProfChainIdx:
  case Opcode::ProfChainConst:
  case Opcode::ProfChainRetIdx:
  case Opcode::ProfChainRetConst:
    break; // Only use the immediate and the implicit path register.
  }
  return std::string();
}

} // namespace

std::string ppp::verifyFunction(const Module &M, const Function &F) {
  if (F.NumRegs < F.NumParams)
    return formatString("%s: NumRegs (%u) < NumParams (%u)", F.Name.c_str(),
                        F.NumRegs, F.NumParams);
  if (F.Blocks.empty())
    return formatString("%s: function has no blocks", F.Name.c_str());
  for (size_t B = 0; B < F.Blocks.size(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    if (BB.Instrs.empty())
      return formatString("%s: block b%zu is empty", F.Name.c_str(), B);
    for (size_t Idx = 0; Idx < BB.Instrs.size(); ++Idx) {
      const Instr &I = BB.Instrs[Idx];
      bool IsLast = Idx + 1 == BB.Instrs.size();
      if (I.isTerminator() != IsLast)
        return formatString(
            "%s: block b%zu: terminator placement wrong at instr %zu",
            F.Name.c_str(), B, Idx);
      if (std::string E =
              verifyInstr(M, F, static_cast<BlockId>(B), Idx, I);
          !E.empty())
        return E;
    }
  }
  return std::string();
}

std::string ppp::verifyModule(const Module &M) {
  if (M.MemWords == 0 || (M.MemWords & (M.MemWords - 1)) != 0)
    return "module: MemWords must be a nonzero power of two";
  if (M.Functions.empty())
    return "module: no functions";
  if (M.MainId < 0 || static_cast<size_t>(M.MainId) >= M.Functions.size())
    return "module: MainId out of range";
  if (M.function(M.MainId).NumParams != 0)
    return "module: main must take no parameters";
  for (const Function &F : M.Functions)
    if (std::string E = verifyFunction(M, F); !E.empty())
      return E;
  return std::string();
}
