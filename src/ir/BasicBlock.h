//===- ir/BasicBlock.h - IR basic block ------------------------*- C++ -*-===//
///
/// \file
/// A basic block: a sequence of instructions ending in exactly one
/// terminator. Successor edges are identified by (block, successor
/// index); that pair is the stable edge identity used throughout the
/// profiling code.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_IR_BASICBLOCK_H
#define PPP_IR_BASICBLOCK_H

#include "ir/Instr.h"

#include <cassert>
#include <vector>

namespace ppp {

/// A straight-line sequence of instructions terminated by a branch,
/// switch, or return.
struct BasicBlock {
  std::vector<Instr> Instrs;

  /// Field-wise equality (serialization round-trip checks).
  bool operator==(const BasicBlock &O) const = default;

  const Instr &terminator() const {
    assert(!Instrs.empty() && "block has no instructions");
    assert(Instrs.back().isTerminator() && "block lacks a terminator");
    return Instrs.back();
  }

  Instr &terminator() {
    assert(!Instrs.empty() && "block has no instructions");
    assert(Instrs.back().isTerminator() && "block lacks a terminator");
    return Instrs.back();
  }

  /// Number of CFG successors (0 for Ret).
  unsigned numSuccessors() const {
    return static_cast<unsigned>(terminator().Targets.size());
  }

  /// The \p Idx'th successor block.
  BlockId successor(unsigned Idx) const {
    const Instr &T = terminator();
    assert(Idx < T.Targets.size() && "successor index out of range");
    return T.Targets[Idx];
  }
};

} // namespace ppp

#endif // PPP_IR_BASICBLOCK_H
