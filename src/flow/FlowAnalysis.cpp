//===- flow/FlowAnalysis.cpp - Definite and potential flow -----------------===//

#include "flow/FlowAnalysis.h"

#include <algorithm>

using namespace ppp;

namespace {

/// Drops the smallest-frequency entries when a map exceeds the safety
/// cap. For definite flow this under-approximates (still a valid lower
/// bound); for potential flow it drops the coldest candidates, which
/// cannot change which *hot* paths get selected.
void enforceCap(FlowMap &M, bool &Truncated) {
  if (M.size() <= MaxFlowMapEntries)
    return;
  Truncated = true;
  FlowMap Pruned;
  size_t Excess = M.size() - MaxFlowMapEntries;
  size_t Skipped = 0;
  // std::map iterates keys in increasing (f, b): the first entries are
  // the smallest frequencies.
  for (const auto &[K, Delta] : M.entries()) {
    if (Skipped < Excess) {
      ++Skipped;
      continue;
    }
    Pruned.add(K.first, K.second, Delta);
  }
  M = std::move(Pruned);
}

} // namespace

FlowResult ppp::computeFlow(const BLDag &Dag, FlowKind Kind) {
  FlowResult R;
  R.Kind = Kind;
  R.NodeMaps.assign(static_cast<size_t>(Dag.numNodes()), FlowMap());
  R.EdgeMaps.assign(Dag.numEdges(), FlowMap());

  int Exit = Dag.exitNode();
  // M[exit] := [(F, 0) -> 1].
  R.NodeMaps[static_cast<size_t>(Exit)].add(Dag.totalFlow(), 0, 1);

  // Reverse topological order, skipping EXIT (already seeded).
  const std::vector<int> &Topo = Dag.topoOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    int V = *It;
    if (V == Exit)
      continue;
    FlowMap &NodeMap = R.NodeMaps[static_cast<size_t>(V)];
    for (int EId : Dag.outEdges(V)) {
      const DagEdge &E = Dag.edge(EId);
      const FlowMap &TgtMap = R.NodeMaps[static_cast<size_t>(E.Dst)];
      FlowMap &EdgeMap = R.EdgeMaps[static_cast<size_t>(EId)];
      if (Kind == FlowKind::Definite) {
        // Slack: flow that can reach tgt(e) without using e.
        int64_t Slack = Dag.nodeFreq(E.Dst) - E.Freq;
        for (const auto &[K, Delta] : TgtMap.entries())
          if (K.first > Slack)
            EdgeMap.add(K.first - Slack, K.second, Delta);
      } else {
        for (const auto &[K, Delta] : TgtMap.entries())
          EdgeMap.add(std::min(K.first, E.Freq), K.second, Delta);
      }
      enforceCap(EdgeMap, R.Truncated);
      // Merge into the node map, bumping b on branch edges.
      for (const auto &[K, Delta] : EdgeMap.entries())
        NodeMap.add(K.first, K.second + (E.IsBranch ? 1 : 0), Delta);
    }
    enforceCap(NodeMap, R.Truncated);
  }
  return R;
}
