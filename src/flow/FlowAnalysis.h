//===- flow/FlowAnalysis.h - Definite and potential flow -------*- C++ -*-===//
///
/// \file
/// Definite flow (the minimum path flow an edge profile guarantees) and
/// potential flow (the maximum it allows), computed with the dynamic
/// programs of the paper's appendix (Figures 14 and 15), which follow
/// Ball, Mataga & Sagiv (POPL 1998) but track branch counts so both the
/// unit-flow and branch-flow metrics are available.
///
/// Both run over a Ball-Larus DAG with frequencies assigned (typically
/// the *full* DAG, no cold edges), in one reverse-topological pass.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_FLOW_FLOWANALYSIS_H
#define PPP_FLOW_FLOWANALYSIS_H

#include "analysis/BLDag.h"
#include "flow/FlowMap.h"

#include <vector>

namespace ppp {

enum class FlowKind : uint8_t {
  Definite,  ///< Lower bound per path (Fig. 14).
  Potential, ///< Upper bound per path (Fig. 15).
};

/// Per-node and per-edge flow maps of one function.
struct FlowResult {
  FlowKind Kind = FlowKind::Definite;
  std::vector<FlowMap> NodeMaps; ///< Indexed by DAG node id.
  std::vector<FlowMap> EdgeMaps; ///< Indexed by DAG edge id.
  /// Set if a map hit the safety cap and small entries were dropped
  /// (turning definite flow into a lower bound of the lower bound).
  bool Truncated = false;

  const FlowMap &atEntry(const BLDag &Dag) const {
    return NodeMaps[static_cast<size_t>(Dag.entryNode())];
  }

  /// Total flow at ENTRY: for definite flow this is DF(P), the
  /// numerator of edge-profile coverage (Sec. 6.2).
  uint64_t totalFlowAtEntry(const BLDag &Dag, FlowMetric Metric) const {
    return atEntry(Dag).totalFlow(Metric);
  }
};

/// Safety cap on per-node map size; beyond it the smallest-frequency
/// entries are dropped (lower-bound preserving for definite flow).
inline constexpr size_t MaxFlowMapEntries = 65536;

/// Runs the Fig. 14 (definite) or Fig. 15 (potential) dynamic program
/// over \p Dag, which must have frequencies assigned.
FlowResult computeFlow(const BLDag &Dag, FlowKind Kind);

inline FlowResult computeDefiniteFlow(const BLDag &Dag) {
  return computeFlow(Dag, FlowKind::Definite);
}
inline FlowResult computePotentialFlow(const BLDag &Dag) {
  return computeFlow(Dag, FlowKind::Potential);
}

} // namespace ppp

#endif // PPP_FLOW_FLOWANALYSIS_H
