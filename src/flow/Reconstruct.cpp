//===- flow/Reconstruct.cpp - Hot path reconstruction ----------------------===//

#include "flow/Reconstruct.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>
#include <tuple>

using namespace ppp;

namespace {

/// Recursive enumerator implementing Figure 16 (definite flow) and its
/// potential-flow variant.
class Enumerator {
public:
  Enumerator(const BLDag &Dag, const FlowResult &Flow, size_t MaxPaths,
             std::vector<ReconstructedPath> &Out)
      : Dag(Dag), Flow(Flow), MaxPaths(MaxPaths), Out(Out) {}

  /// Starts one top-level enumeration for an ENTRY entry (f, b) with
  /// multiplicity Delta.
  void run(int64_t F, unsigned B, uint64_t Delta) {
    OrigFreq = F;
    OrigBranches = B;
    EdgeStack.clear();
    // No previous edge at ENTRY: an infinite frequency makes the
    // min-compatibility test an equality test.
    enumerate(Dag.entryNode(), F, std::numeric_limits<int64_t>::max(), B,
              Delta);
  }

private:
  /// At node \p V, the suffix must continue with flow value \p F (as
  /// recorded in the edge maps) and \p B remaining branches; \p PrevFreq
  /// is the frequency of the edge just taken (potential flow only).
  void enumerate(int V, int64_t F, int64_t PrevFreq, unsigned B,
                 uint64_t Delta) {
    if (Out.size() >= MaxPaths)
      return;
    if (V == Dag.exitNode()) {
      emit();
      return;
    }
    uint64_t Remaining = Delta;
    // Fig. 16: `used` is local to this invocation -- a different prefix
    // reaching this node again may (and must) reuse the same suffix
    // entries, since edge-map multiplicities count suffixes per prefix.
    std::set<std::tuple<int, int64_t, unsigned>> Used;
    while (Remaining > 0 && Out.size() < MaxPaths) {
      // Find an unused matching (edge, entry) pair; edges in id order
      // and entries in increasing (f, b) keep this deterministic.
      bool Found = false;
      for (int EId : Dag.outEdges(V)) {
        const DagEdge &E = Dag.edge(EId);
        unsigned Bump = E.IsBranch ? 1 : 0;
        if (B < Bump)
          continue;
        unsigned C = B - Bump;
        const FlowMap &EM = Flow.EdgeMaps[static_cast<size_t>(EId)];
        for (const auto &[K, EntryDelta] : EM.entries()) {
          auto [G, EC] = K;
          if (EC != C)
            continue;
          if (!matches(G, F, PrevFreq))
            continue;
          if (!Used.insert(std::make_tuple(EId, G, EC)).second)
            continue;
          uint64_t Debit = std::min(Remaining, EntryDelta);
          EdgeStack.push_back(EId);
          enumerate(E.Dst, nextFreq(G, E), E.Freq, C, Debit);
          EdgeStack.pop_back();
          Remaining -= Debit;
          Found = true;
          break;
        }
        if (Found)
          break;
      }
      if (!Found) {
        // Flow maps and reconstruction disagree; only possible if the
        // maps were truncated by the safety cap. Drop the remainder.
        assert(Flow.Truncated && "reconstruction failed on exact maps");
        return;
      }
    }
  }

  /// Matching rule at an edge entry with frequency \p G, target value
  /// \p F, previous edge frequency \p PrevFreq.
  bool matches(int64_t G, int64_t F, int64_t PrevFreq) const {
    if (Flow.Kind == FlowKind::Definite)
      return G == F;
    // Potential: the target-node entry G collapsed to F through
    // min(G, PrevFreq).
    return std::min(G, PrevFreq) == F;
  }

  /// Flow value to search for at the edge's target node.
  int64_t nextFreq(int64_t G, const DagEdge &E) const {
    if (Flow.Kind == FlowKind::Definite)
      return G + (Dag.nodeFreq(E.Dst) - E.Freq); // Undo the slack.
    return G;
  }

  /// Converts the current edge stack into a ReconstructedPath.
  void emit() {
    assert(!EdgeStack.empty() && "path with no edges");
    ReconstructedPath P;
    P.Freq = OrigFreq;
    P.Branches = OrigBranches;
    const DagEdge &First = Dag.edge(EdgeStack.front());
    assert((First.Kind == DagEdgeKind::FnEntry ||
            First.Kind == DagEdgeKind::LoopEntry) &&
           "path does not start at ENTRY");
    P.Key.First = First.Dst;
    P.Key.StartCfgEdgeId =
        First.Kind == DagEdgeKind::LoopEntry ? First.CfgEdgeId : -1;
    for (size_t I = 1; I + 1 < EdgeStack.size(); ++I) {
      const DagEdge &E = Dag.edge(EdgeStack[I]);
      assert(E.Kind == DagEdgeKind::Real && "interior edge not real");
      P.Key.EdgeIds.push_back(E.CfgEdgeId);
    }
    const DagEdge &Last = Dag.edge(EdgeStack.back());
    if (EdgeStack.size() == 1) {
      // Degenerate single-edge path cannot happen: ENTRY edges never
      // reach EXIT directly (EXIT in-edges are FnExit/LoopExit).
      assert(false && "single-edge ENTRY->EXIT path");
      return;
    }
    P.Key.TermCfgEdgeId =
        Last.Kind == DagEdgeKind::LoopExit ? Last.CfgEdgeId : -1;
    Out.push_back(std::move(P));
  }

  const BLDag &Dag;
  const FlowResult &Flow;
  size_t MaxPaths;
  std::vector<ReconstructedPath> &Out;
  std::vector<int> EdgeStack;
  int64_t OrigFreq = 0;
  unsigned OrigBranches = 0;
};

} // namespace

std::vector<ReconstructedPath>
ppp::reconstructPaths(const BLDag &Dag, const FlowResult &Flow,
                      uint64_t CutoffFlow, FlowMetric Metric,
                      size_t MaxPaths) {
  std::vector<ReconstructedPath> Out;
  const FlowMap &EntryMap = Flow.atEntry(Dag);

  // Process ENTRY entries hottest-first.
  std::vector<std::pair<FlowMap::Key, uint64_t>> Entries(
      EntryMap.entries().begin(), EntryMap.entries().end());
  std::stable_sort(Entries.begin(), Entries.end(),
                   [&](const auto &A, const auto &B) {
                     auto FlowOf = [&](const FlowMap::Key &K) {
                       return Metric == FlowMetric::Unit
                                  ? static_cast<uint64_t>(K.first)
                                  : static_cast<uint64_t>(K.first) * K.second;
                     };
                     return FlowOf(A.first) > FlowOf(B.first);
                   });

  Enumerator En(Dag, Flow, MaxPaths, Out);
  for (const auto &[K, Delta] : Entries) {
    uint64_t EntryFlow = Metric == FlowMetric::Unit
                             ? static_cast<uint64_t>(K.first)
                             : static_cast<uint64_t>(K.first) * K.second;
    if (EntryFlow <= CutoffFlow)
      continue; // Strictly-greater cutoff, as in Fig. 16.
    if (Out.size() >= MaxPaths)
      break;
    En.run(K.first, K.second, Delta);
  }
  return Out;
}
