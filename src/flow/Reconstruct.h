//===- flow/Reconstruct.h - Hot path reconstruction ------------*- C++ -*-===//
///
/// \file
/// Reconstructs concrete paths (and their estimated frequencies) from a
/// definite- or potential-flow result, following Figure 16 of the paper.
/// The figure's underlined fix to Ball-Mataga-Sagiv -- the `used` set
/// plus per-entry debit bookkeeping, confirmed with Ball -- is included:
/// without it, an entry whose multiplicity is exhausted could be matched
/// again, duplicating some paths and dropping others.
///
/// For potential flow the paper's two changes apply: the recursion
/// carries the matched edge-entry frequency, and matching is by
/// min-compatibility with the previous edge's frequency rather than
/// equality.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_FLOW_RECONSTRUCT_H
#define PPP_FLOW_RECONSTRUCT_H

#include "flow/FlowAnalysis.h"
#include "profile/PathKey.h"

#include <vector>

namespace ppp {

/// One reconstructed path with its flow-derived frequency estimate.
struct ReconstructedPath {
  PathKey Key;
  int64_t Freq = 0;      ///< Definite (or potential) frequency f'.
  unsigned Branches = 0; ///< Branch count of the path.

  uint64_t flow(FlowMetric Metric) const {
    return Metric == FlowMetric::Unit
               ? static_cast<uint64_t>(Freq)
               : static_cast<uint64_t>(Freq) * Branches;
  }
};

/// Enumerates paths whose estimated flow strictly exceeds \p CutoffFlow
/// (under \p Metric), hottest first, up to \p MaxPaths results.
/// \p Flow must have been computed over \p Dag.
std::vector<ReconstructedPath>
reconstructPaths(const BLDag &Dag, const FlowResult &Flow,
                 uint64_t CutoffFlow, FlowMetric Metric,
                 size_t MaxPaths = 1u << 20);

} // namespace ppp

#endif // PPP_FLOW_RECONSTRUCT_H
