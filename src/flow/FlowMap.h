//===- flow/FlowMap.h - Flow value multisets -------------------*- C++ -*-===//
///
/// \file
/// The flow-value representation of Ball, Mataga & Sagiv's definite and
/// potential flow algorithms, extended with the paper's branch counts:
/// a multiset of [(f, b) -> delta] entries, where f is a path-suffix
/// frequency, b the number of branches on the suffix, and delta the
/// number of suffixes sharing that (f, b). The [+] operator of the paper
/// merges entries with equal (f, b).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_FLOW_FLOWMAP_H
#define PPP_FLOW_FLOWMAP_H

#include "profile/PathProfile.h"

#include <cstdint>
#include <map>
#include <utility>

namespace ppp {

/// A multiset of (frequency, branch-count) -> path-count entries.
class FlowMap {
public:
  using Key = std::pair<int64_t, unsigned>; ///< (f, b)
  using Container = std::map<Key, uint64_t>;

  /// Adds \p Delta suffixes with frequency \p Freq and \p Branches
  /// branches. Non-positive frequencies are dropped (zero-flow suffixes
  /// carry no information and pruning them keeps maps small).
  void add(int64_t Freq, unsigned Branches, uint64_t Delta) {
    if (Freq <= 0 || Delta == 0)
      return;
    Entries[{Freq, Branches}] += Delta;
  }

  /// The paper's [+] merge.
  void merge(const FlowMap &O) {
    for (const auto &[K, Delta] : O.Entries)
      Entries[K] += Delta;
  }

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  const Container &entries() const { return Entries; }

  /// Sum of f * (b or 1) * delta over all entries: the total flow this
  /// map guarantees under \p Metric.
  uint64_t totalFlow(FlowMetric Metric) const {
    uint64_t N = 0;
    for (const auto &[K, Delta] : Entries) {
      uint64_t PerPath =
          Metric == FlowMetric::Unit
              ? static_cast<uint64_t>(K.first)
              : static_cast<uint64_t>(K.first) * static_cast<uint64_t>(K.second);
      N += PerPath * Delta;
    }
    return N;
  }

  /// Total number of suffixes recorded.
  uint64_t totalCount() const {
    uint64_t N = 0;
    for (const auto &[K, Delta] : Entries)
      N += Delta;
    return N;
  }

private:
  Container Entries;
};

} // namespace ppp

#endif // PPP_FLOW_FLOWMAP_H
