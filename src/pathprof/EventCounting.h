//===- pathprof/EventCounting.h - Ball's event counting --------*- C++ -*-===//
///
/// \file
/// Ball's event-counting optimization (TOPLAS 1994), as used by PP and
/// refined by PPP (Sec. 4.5): re-assign edge increments so the edges on
/// a maximum spanning tree (predicted-hottest edges) carry no
/// instrumentation, while every path still sums to its path number.
///
/// Formulation via vertex potentials: with the virtual EXIT->ENTRY edge
/// forced onto the spanning tree (equivalently, ENTRY and EXIT pre-united
/// with potential 0), solve phi along tree edges so that
/// Val(e) + phi(src) - phi(dst) == 0 for tree edges; then
/// Inc(e) = Val(e) + phi(src) - phi(dst) for every edge. Any
/// ENTRY->EXIT path telescopes: sum(Inc) = sum(Val) + phi(ENTRY) -
/// phi(EXIT) = sum(Val), so path numbers are preserved exactly (this is
/// the property test in tests/eventcount_test.cpp).
///
/// Increments may be negative; free poisoning compensates (Sec. 4.6).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PATHPROF_EVENTCOUNTING_H
#define PPP_PATHPROF_EVENTCOUNTING_H

#include "analysis/BLDag.h"

#include <cstdint>
#include <vector>

namespace ppp {

/// Chooses a maximum spanning tree over the non-cold DAG edges using
/// \p Weights (one per DAG edge; higher = hotter = keep increment-free),
/// then rewrites DagEdge::Inc and DagEdge::OnTree in place. Must run
/// after path numbering.
void runEventCounting(BLDag &Dag, const std::vector<int64_t> &Weights);

/// Convenience: weights = the DAG's assigned frequencies.
void runEventCounting(BLDag &Dag);

/// Maps per-CFG-edge weights (e.g. a static heuristic profile) onto DAG
/// edges, mirroring BLDag::setFrequencies.
std::vector<int64_t> dagEdgeWeights(const BLDag &Dag,
                                    const std::vector<int64_t> &CfgEdgeFreq,
                                    int64_t Invocations);

} // namespace ppp

#endif // PPP_PATHPROF_EVENTCOUNTING_H
