//===- pathprof/EstimatedProfile.cpp - Estimated path profiles --------------===//

#include "pathprof/EstimatedProfile.h"

#include "flow/FlowAnalysis.h"

using namespace ppp;

ProfilerRunData ppp::buildEstimatedProfile(const Module &M,
                                           const EdgeProfile &EP,
                                           const InstrumentationResult &IR,
                                           const ProfileRuntime &RT) {
  ProfilerRunData R;
  R.Estimated = PathProfile(M.numFunctions());
  R.Measured = PathProfile(M.numFunctions());
  R.FuncStored.assign(M.numFunctions(), 0);
  R.FuncLost.assign(M.numFunctions(), 0);
  R.FuncCold.assign(M.numFunctions(), 0);
  R.FuncInvalid.assign(M.numFunctions(), 0);

  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    FuncId F = static_cast<FuncId>(FI);
    const FunctionPlan &Plan = IR.Plans[FI];
    const FunctionEdgeProfile &FP = EP.func(F);
    const CfgView &Cfg = *Plan.Cfg;

    // Decode measured counts.
    if (Plan.Instrumented) {
      const PathTable &T = RT.table(F);
      R.FuncLost[FI] = T.lostCount();
      R.FuncInvalid[FI] = T.invalidCount();
      R.FuncCold[FI] = T.coldCheckedCount();
      if (Plan.chained()) {
        // Chained ids decode to up to KEffective acyclic segments; a
        // count of C means each segment path ran C times. Undecodable
        // ids carry a free-poisoned digit -- a cold path inside the
        // chain -- so they attribute as cold, like the unchained poison
        // region.
        T.forEach([&](int64_t Id, uint64_t Count) {
          R.FuncStored[FI] += Count;
          std::optional<std::vector<PathKey>> Segs = Plan.decodeKPath(Id);
          if (!Segs) {
            R.FuncCold[FI] += Count;
            return;
          }
          for (const PathKey &Key : *Segs) {
            R.Measured.Funcs[FI].add(Cfg, Key, Count);
            R.Estimated.Funcs[FI].add(Cfg, Key, Count);
          }
        });
      } else {
        T.forEach([&](int64_t Index, uint64_t Count) {
          R.FuncStored[FI] += Count;
          if (Index < 0 ||
              static_cast<uint64_t>(Index) >= Plan.NumPaths) {
            R.FuncCold[FI] += Count; // Poison region: cold executions.
            return;
          }
          std::optional<PathKey> Key =
              Plan.decodePath(static_cast<uint64_t>(Index));
          if (!Key) {
            R.FuncCold[FI] += Count;
            return;
          }
          R.Measured.Funcs[FI].add(Cfg, *Key, Count);
          R.Estimated.Funcs[FI].add(Cfg, *Key, Count);
        });
      }
      R.LostCounts += R.FuncLost[FI];
      R.InvalidCounts += R.FuncInvalid[FI];
      R.ColdCounts += R.FuncCold[FI];
    }

    // Definite-flow estimates for whatever is not instrumented.
    std::vector<int64_t> CfgFreq(FP.EdgeFreq.begin(), FP.EdgeFreq.end());
    BLDag FullDag = BLDag::build(Cfg, *Plan.Loops);
    FullDag.setFrequencies(CfgFreq, FP.Invocations);
    if (FullDag.totalFlow() == 0)
      continue; // Function never ran; nothing to estimate.
    FlowResult DF = computeDefiniteFlow(FullDag);
    // Unit metric with cutoff 0: enumerate *every* positive-definite
    // path, including zero-branch ones (a branch-flow cutoff would
    // drop them under Fig. 16's strictly-greater rule, starving
    // unit-flow consumers of real paths).
    std::vector<ReconstructedPath> Paths = reconstructPaths(
        FullDag, DF, /*CutoffFlow=*/0, FlowMetric::Unit,
        MaxReconstructedPaths);
    for (const ReconstructedPath &P : Paths) {
      if (Plan.isInstrumentedPath(P.Key))
        continue; // Measured directly; keep the counter value.
      if (P.Freq > 0)
        R.Estimated.Funcs[FI].add(Cfg, P.Key,
                                  static_cast<uint64_t>(P.Freq));
    }
  }
  return R;
}

PathProfile ppp::estimateFromEdgeProfile(const Module &M,
                                         const EdgeProfile &EP, FlowKind Kind,
                                         uint64_t CutoffFlow,
                                         FlowMetric Metric) {
  PathProfile Profile(M.numFunctions());
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    FuncId F = static_cast<FuncId>(FI);
    const FunctionEdgeProfile &FP = EP.func(F);
    CfgView Cfg(M.function(F));
    LoopInfo LI = LoopInfo::compute(Cfg);
    std::vector<int64_t> CfgFreq(FP.EdgeFreq.begin(), FP.EdgeFreq.end());
    BLDag Dag = BLDag::build(Cfg, LI);
    Dag.setFrequencies(CfgFreq, FP.Invocations);
    if (Dag.totalFlow() == 0)
      continue;
    FlowResult Flow = computeFlow(Dag, Kind);
    std::vector<ReconstructedPath> Paths = reconstructPaths(
        Dag, Flow, CutoffFlow, Metric, MaxReconstructedPaths);
    for (const ReconstructedPath &P : Paths)
      if (P.Freq > 0)
        Profile.Funcs[FI].add(Cfg, P.Key, static_cast<uint64_t>(P.Freq));
  }
  return Profile;
}
