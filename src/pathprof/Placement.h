//===- pathprof/Placement.h - Instrumentation placement --------*- C++ -*-===//
///
/// \file
/// Places profiling operations on DAG edges and optimizes them
/// (Sec. 3.1, Fig. 1; Sec. 4.4, Fig. 5; Sec. 4.6):
///
///  1. Initial placement: `r = 0` on ENTRY out-edges, `r += Inc` on
///     event-counting chords, `count[r]++` on EXIT in-edges, and free
///     poisoning `r = poison` on cold edges (with suffix-range
///     compensation for negative increments).
///  2. Combining: set+add -> set, add+count -> count[r+c], set+count ->
///     count[const].
///  3. Pushing: initializations are pushed down through single-entry
///     merge points and counts pushed up through single-exit points.
///     PP/TPP treat cold edges as blockers; PPP ignores them (which is
///     what occasionally lets a cold execution record a hot path number
///     -- the overcount the coverage metric penalizes).
///  4. A forward interval analysis over the final ops bounds every
///     possible counter index, sizing the frequency table.
///
/// Per-edge op order is set -> add -> count; a set always initializes
/// the path that the same edge's count (if any) terminates, so folding
/// is sound. The only count-before-set sequence -- a back edge ending
/// one path and starting the next -- is handled at finalization by
/// concatenating the LoopExit ops before the LoopEntry ops.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PATHPROF_PLACEMENT_H
#define PPP_PATHPROF_PLACEMENT_H

#include "analysis/BLDag.h"
#include "pathprof/Numbering.h"

#include <cstdint>
#include <vector>

namespace ppp {

/// How cold paths are kept out of the hot counter range.
enum class PoisonStyle : uint8_t {
  /// Sec. 4.6: poison constants map cold paths into [N, 3N-1]; counts
  /// need no test. Used by PPP and by the paper's TPP implementation.
  Free,
  /// Original TPP: poison is a large negative value and every count in
  /// a routine with cold edges pays a compare-and-branch. Provided as
  /// an ablation to isolate the cost free poisoning removes.
  Checked,
};

/// How pushing treats cold edges (Sec. 4.4).
enum class PushMode : uint8_t {
  None,       ///< No pushing (for ablation/debugging).
  Blocked,    ///< PP/TPP: cold edges block pushing.
  IgnoreCold, ///< PPP: cold edges neither block nor receive inits.
};

/// The (normalized) profiling operations of one DAG edge, executed in
/// the order set, add, count.
struct EdgeOps {
  enum class CountKind : uint8_t { None, Indexed, Const };

  bool HasSet = false;
  int64_t SetVal = 0;
  bool HasAdd = false;
  int64_t AddVal = 0;
  CountKind Count = CountKind::None;
  int64_t CountVal = 0;      ///< Indexed: count[r+v]; Const: count[v].
  bool CountChecked = false; ///< Indexed count carries a poison test.

  bool empty() const {
    return !HasSet && !HasAdd && Count == CountKind::None;
  }
  bool onlySet() const {
    return HasSet && !HasAdd && Count == CountKind::None;
  }
  bool onlyCount() const {
    return !HasSet && !HasAdd && Count != CountKind::None;
  }
  unsigned numOps() const {
    return (HasSet ? 1u : 0u) + (HasAdd ? 1u : 0u) +
           (Count != CountKind::None ? 1u : 0u);
  }

  /// Folds set+add, add+count, set+count into combined forms.
  void normalize();

  /// Prepends `r = V` (an initialization flowing in from above). An
  /// existing set wins: it executes later and overwrites.
  void prependSet(int64_t V);

  /// Appends a count (a path termination flowing in from below),
  /// folding with any add/set already here. \returns false if this edge
  /// already counts (caller must not push here).
  bool appendCount(CountKind Kind, int64_t V, bool Checked = false);
};

/// Result of placement over one DAG.
struct PlacementResult {
  std::vector<EdgeOps> Ops; ///< Indexed by DAG edge id.
  /// Counter indices proven to lie in [MinIndex, MaxIndex]; the array
  /// table needs MaxIndex+1 slots. MinIndex should be >= 0.
  int64_t MinIndex = 0;
  int64_t MaxIndex = -1;
  /// Static number of profiling ops placed (instrumentation size).
  uint64_t StaticOps = 0;
};

/// Runs placement over \p Dag (numbered, event-counted). \p NumPaths is
/// the N of the numbering: poison constants map cold paths at or above
/// it.
///
/// \p PinExitCounts keeps every count on the dummy exit edge where it
/// was initially placed (push-up disabled; push-down of sets still
/// runs). k-iteration chaining requires this: a count's termination
/// provenance -- back edge (chain step) vs Ret (chain flush) -- must
/// survive into lowering, and a count hoisted above the LoopExit /
/// FnExit split would erase it.
PlacementResult placeInstrumentation(const BLDag &Dag,
                                     const NumberingResult &Numbering,
                                     PushMode Mode,
                                     PoisonStyle Style = PoisonStyle::Free,
                                     bool PinExitCounts = false);

} // namespace ppp

#endif // PPP_PATHPROF_PLACEMENT_H
