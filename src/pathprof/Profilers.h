//===- pathprof/Profilers.h - PP / TPP / PPP drivers -----------*- C++ -*-===//
///
/// \file
/// The profile-guided profiling drivers. A single options struct exposes
/// every technique as a toggle so the paper's three profilers are
/// presets and Figure 13's leave-one-out ablations are one-line edits:
///
///   PP  (Ball-Larus):  instrument everything; static-heuristic
///                      spanning tree; Fig. 2 numbering.
///   TPP (Joshi et al.): + local cold criterion (gated: only when it
///                      moves the routine from hash to array), obvious
///                      loop disconnection, obvious-routine skipping.
///                      Free poisoning stands in for TPP's poison check,
///                      as in the paper's own TPP implementation.
///   PPP (this paper):  + global & self-adjusting cold criteria, smart
///                      numbering/event counting, push-through-cold,
///                      low-coverage routine gate, ungated cold removal.
///
/// instrumentModule() returns an instrumented clone plus a per-function
/// plan that can map path numbers to concrete paths and back -- the glue
/// between the runtime counters and the metrics.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PATHPROF_PROFILERS_H
#define PPP_PATHPROF_PROFILERS_H

#include "analysis/BLDag.h"
#include "interp/ProfileRuntime.h"
#include "ir/Module.h"
#include "pathprof/Lowering.h"
#include "pathprof/Numbering.h"
#include "pathprof/Placement.h"
#include "profile/EdgeProfile.h"
#include "profile/Merge.h"
#include "profile/PathKey.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace ppp {

class FunctionAnalysisManager;

/// Every knob of the instrumentation pipeline (paper defaults).
struct ProfilerOptions {
  std::string Name = "pp";

  /// Sec. 4.5: number edges by frequency and build the event-counting
  /// spanning tree from the edge profile instead of static heuristics.
  bool SmartNumbering = false;

  /// Sec. 3.2: local cold criterion (freq < fraction of source block).
  bool LocalColdCriterion = false;
  double LocalColdFraction = 0.05;

  /// Sec. 4.2: global cold criterion (freq < fraction of program flow).
  bool GlobalColdCriterion = false;
  double GlobalColdFraction = 0.001;

  /// Sec. 4.3: raise the global criterion until no hashing is needed.
  bool SelfAdjust = false;
  double SelfAdjustFactor = 1.5;
  unsigned SelfAdjustMaxIters = 20;

  /// Sec. 3.2 (TPP): remove cold edges only when that turns a
  /// would-be-hashed routine into an array routine.
  bool ColdOnlyToAvoidHash = false;

  /// Sec. 3.2: disconnect obvious high-trip loops.
  bool ObviousLoopDisconnect = false;
  double ObviousLoopMinTrip = 10.0;

  /// Sec. 3.2: skip routines whose paths are all obvious.
  bool SkipObviousRoutines = false;

  /// Sec. 4.1: skip routines the edge profile already covers well.
  bool LowCoverageGate = false;
  double CoverageThreshold = 0.75;

  /// Sec. 4.4: pushing mode.
  PushMode Push = PushMode::Blocked;

  /// Sec. 4.6: free poisoning (paper default for all three profilers)
  /// or original TPP's checked poisoning (ablation).
  PoisonStyle Poison = PoisonStyle::Free;

  /// Sec. 7.4: routines with more paths than this hash their counters.
  uint64_t HashThreshold = 4000;

  /// k-iteration path profiling (D'Elia & Demetrescu, arXiv 1304.5197):
  /// profile chains of up to this many acyclic path segments joined at
  /// loop back edges. 1 (the default) is plain Ball-Larus behavior --
  /// every back edge truncates the path. Values above 1 switch a
  /// function's counting to the chained ProfChain* forms with a
  /// hash-organized table unless the k-expanded space still fits an
  /// array. Functions whose k-path count or id space overflows are
  /// demoted to k=1 per function with a recorded reason (never a silent
  /// wrap). Spec suffix: +kiter<k>. Capped at MaxKIterations.
  uint64_t KIterations = 1;

  /// Documented ceiling for KIterations: chain ids live in [1, M^k) for
  /// a per-function digit base M >= 3, and M^k must stay below 2^63, so
  /// k beyond 39 cannot help even the narrowest loop; 16 already covers
  /// every realistic depth while keeping the validation message honest.
  static constexpr uint64_t MaxKIterations = 16;

  /// Trace collection backend: instrument/plan exactly like the base
  /// preset, but collect by recording branch-target packets on the
  /// clean module and reconstructing the counters offline
  /// (src/trace/TraceDecoder) instead of counting on the hot path.
  bool TraceBackend = false;

  /// Timing-annotated tracing: in addition to branch-target packets,
  /// the recording interpreter stamps its accumulated cost counter at
  /// every Ret (delta-compressed), and the offline decode attributes
  /// inter-stamp cost to path executions (src/trace/PathTiming).
  /// Requires TraceBackend.
  bool TraceTimestamps = false;

  static ProfilerOptions pp();
  static ProfilerOptions tpp();
  static ProfilerOptions ppp();
  /// PPP for an online controller (src/adapt): same numbering and
  /// poisoning, but the overhead-minimization gates (skip-obvious,
  /// low-coverage) are off. Those gates assume the profile is the
  /// product; an adaptive deployment needs live counters in every
  /// routine as its hotness sensor, and sheds them routine by routine
  /// as it specializes.
  static ProfilerOptions adaptive();
  /// PPP's plan with trace-backend collection (TraceBackend = true).
  static ProfilerOptions trace();
  /// trace() with cost stamps (TraceTimestamps = true): the "trace+time"
  /// preset behind per-path latency attribution.
  static ProfilerOptions traceTimed();
  /// TPP as Joshi et al. published it: poison checks on every count in
  /// routines with cold edges (the paper's implementation substitutes
  /// free poisoning; this preset exists to measure the difference).
  static ProfilerOptions tppChecked();
};

/// Why a function received no instrumentation.
enum class SkipReason : uint8_t {
  NotSkipped,
  NoPaths,      ///< Cold removal eliminated every path.
  AllObvious,   ///< Every path has a defining edge (Sec. 3.2).
  HighCoverage, ///< Edge profile coverage above threshold (Sec. 4.1).
  Overflow,     ///< Path count exceeds 2^64; cannot number.
};

/// Why a function requested at k > 1 fell back to plain k=1 counting.
/// Recorded per function so demotions are observable, never silent.
enum class KDemoteReason : uint8_t {
  None,              ///< Chained as requested (or nothing to chain).
  PathCountOverflow, ///< k-path count saturated 64 bits.
  IdSpaceOverflow,   ///< M^k - 1 would not fit the int64 path register.
  CheckedPoisoning,  ///< Checked poisoning has no chained counting form.
  TraceBackend,      ///< The trace decoder replays acyclic sites only.
};

/// Printable name of \p R ("none", "path-count-overflow", ...).
const char *kDemoteReasonName(KDemoteReason R);

/// Per-function instrumentation plan and decode metadata. Holds
/// analyses over the *original* module, which must outlive the plan.
class FunctionPlan {
public:
  bool Instrumented = false;
  SkipReason Skip = SkipReason::NotSkipped;
  uint64_t NumPaths = 0;
  PathTable::Kind TableKind = PathTable::Kind::None;
  int64_t ArraySize = 0;
  double EdgeCoverage = 0.0; ///< DF/F of the edge profile (branch flow).
  uint64_t StaticOps = 0;    ///< Profiling instructions placed.
  std::set<int> ColdEdges;
  std::set<int> DisconnectedBackEdges;

  // k-iteration chaining (tentpole). KEffective > 1 iff this function
  // counts chained ids via the ProfChain* forms; otherwise every field
  // below is its vacuous k=1 value and decode goes through decodePath.
  uint64_t KRequested = 1; ///< ProfilerOptions::KIterations at plan time.
  uint64_t KEffective = 1; ///< Actual chain depth after demotion.
  KDemoteReason KDemote = KDemoteReason::None;
  uint64_t NumKPaths = 0; ///< Valid k-path ids (k-expanded path count).
  int64_t ChainMult = 0;  ///< Digit base M (MaxIndex + 2); 0 when unchained.
  int64_t IdBound = 0;    ///< Chained ids lie in [1, IdBound); M^KEffective.

  bool chained() const { return Instrumented && KEffective > 1; }

  /// The instrumentation sites lowering materialized, in clean-CFG
  /// terms (entry / per-edge / pre-Ret op lists). The trace decoder
  /// replays these against recorded control flow to reconstruct the
  /// counters the instrumented module would have produced.
  SiteOps Sites;

  /// Shared with (and usually served by) a FunctionAnalysisManager;
  /// the shared_ptr keeps the analyses alive past cache invalidation.
  std::shared_ptr<const CfgView> Cfg;
  std::shared_ptr<const LoopInfo> Loops;
  std::unique_ptr<BLDag> Dag; ///< Final instrumented DAG (Vals assigned).
  NumberingResult Numbering;

  /// The unique path number of \p Key, or nullopt if the path is not
  /// instrumented (crosses a cold/disconnected edge, or the routine is
  /// skipped).
  std::optional<uint64_t> pathNumberOf(const PathKey &Key) const;

  /// Inverse: the concrete path for number \p Number in [0, NumPaths).
  std::optional<PathKey> decodePath(uint64_t Number) const;

  /// Decodes a chained k-path id into its constituent acyclic segments,
  /// oldest first (1 <= size() <= KEffective). Returns nullopt for ids
  /// outside [1, IdBound), ids with a zero or poisoned digit, and ids
  /// whose segments do not chain (a segment's terminating back edge
  /// must be the next segment's starting back edge; only the last
  /// segment may end at a Ret, and only a chain cut short by a Ret may
  /// have fewer than KEffective digits). Requires chained().
  std::optional<std::vector<PathKey>> decodeKPath(int64_t Id) const;

  bool isInstrumentedPath(const PathKey &Key) const {
    return Instrumented && pathNumberOf(Key).has_value();
  }

  /// Called by the driver once the final DAG exists.
  void buildEdgeIndex();

private:
  // DAG edge lookup by CFG identity.
  std::unordered_map<int, int> RealByCfg;
  std::map<int, int> LoopEntryByBack;
  std::map<int, int> LoopExitByBack;
  std::map<BlockId, int> FnExitByBlock;
  int FnEntryEdge = -1;
};

/// An instrumented module plus its plans.
struct InstrumentationResult {
  Module Instrumented;
  std::vector<FunctionPlan> Plans;
  ProfilerOptions Options;

  /// Fresh zeroed counter tables matching the plans.
  ProfileRuntime makeRuntime() const;
};

/// Validates \p O's numeric knobs. Returns an empty string when every
/// value is usable, otherwise a description of the first problem
/// (fractions outside [0, 1], zero iteration/threshold counts, a
/// non-expanding self-adjust factor).
std::string validateProfilerOptions(const ProfilerOptions &O);

/// Instruments a clone of \p M according to \p Opts, using \p EP (self
/// advice) for every profile-guided decision. \p M must outlive the
/// result. Invalid options are a fatal error (validateProfilerOptions).
///
/// Defined in pass/Instrument.cpp (the staged pipeline); callers link
/// ppp_pass.
InstrumentationResult instrumentModule(const Module &M, const EdgeProfile &EP,
                                       const ProfilerOptions &Opts);

/// Flattens one instrumented run into the mergeable wire form the
/// profile-collection server (src/serve) aggregates: per function, the
/// runtime table's (index, count) pairs, the lost/cold/invalid spill
/// counters, and (when \p EP is non-null) the edge profile's counts.
/// The result is canonical, so equal runs serialize byte-identically.
CountsMessage countsFromRun(const std::string &Benchmark,
                            const InstrumentationResult &IR,
                            const ProfileRuntime &RT,
                            const EdgeProfile *EP = nullptr);

/// As above, but serving every per-function analysis from \p FAM, which
/// must be bound to \p M. Rebinds the manager's advice to \p EP; with
/// one manager serving several profiler configurations over one module,
/// the shared analyses (CFG, loops, full-DAG facts) are computed once.
InstrumentationResult instrumentModule(const Module &M, const EdgeProfile &EP,
                                       const ProfilerOptions &Opts,
                                       FunctionAnalysisManager &FAM);

} // namespace ppp

#endif // PPP_PATHPROF_PROFILERS_H
