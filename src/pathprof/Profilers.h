//===- pathprof/Profilers.h - PP / TPP / PPP drivers -----------*- C++ -*-===//
///
/// \file
/// The profile-guided profiling drivers. A single options struct exposes
/// every technique as a toggle so the paper's three profilers are
/// presets and Figure 13's leave-one-out ablations are one-line edits:
///
///   PP  (Ball-Larus):  instrument everything; static-heuristic
///                      spanning tree; Fig. 2 numbering.
///   TPP (Joshi et al.): + local cold criterion (gated: only when it
///                      moves the routine from hash to array), obvious
///                      loop disconnection, obvious-routine skipping.
///                      Free poisoning stands in for TPP's poison check,
///                      as in the paper's own TPP implementation.
///   PPP (this paper):  + global & self-adjusting cold criteria, smart
///                      numbering/event counting, push-through-cold,
///                      low-coverage routine gate, ungated cold removal.
///
/// instrumentModule() returns an instrumented clone plus a per-function
/// plan that can map path numbers to concrete paths and back -- the glue
/// between the runtime counters and the metrics.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PATHPROF_PROFILERS_H
#define PPP_PATHPROF_PROFILERS_H

#include "analysis/BLDag.h"
#include "interp/ProfileRuntime.h"
#include "ir/Module.h"
#include "pathprof/Lowering.h"
#include "pathprof/Numbering.h"
#include "pathprof/Placement.h"
#include "profile/EdgeProfile.h"
#include "profile/Merge.h"
#include "profile/PathKey.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace ppp {

class FunctionAnalysisManager;

/// Every knob of the instrumentation pipeline (paper defaults).
struct ProfilerOptions {
  std::string Name = "pp";

  /// Sec. 4.5: number edges by frequency and build the event-counting
  /// spanning tree from the edge profile instead of static heuristics.
  bool SmartNumbering = false;

  /// Sec. 3.2: local cold criterion (freq < fraction of source block).
  bool LocalColdCriterion = false;
  double LocalColdFraction = 0.05;

  /// Sec. 4.2: global cold criterion (freq < fraction of program flow).
  bool GlobalColdCriterion = false;
  double GlobalColdFraction = 0.001;

  /// Sec. 4.3: raise the global criterion until no hashing is needed.
  bool SelfAdjust = false;
  double SelfAdjustFactor = 1.5;
  unsigned SelfAdjustMaxIters = 20;

  /// Sec. 3.2 (TPP): remove cold edges only when that turns a
  /// would-be-hashed routine into an array routine.
  bool ColdOnlyToAvoidHash = false;

  /// Sec. 3.2: disconnect obvious high-trip loops.
  bool ObviousLoopDisconnect = false;
  double ObviousLoopMinTrip = 10.0;

  /// Sec. 3.2: skip routines whose paths are all obvious.
  bool SkipObviousRoutines = false;

  /// Sec. 4.1: skip routines the edge profile already covers well.
  bool LowCoverageGate = false;
  double CoverageThreshold = 0.75;

  /// Sec. 4.4: pushing mode.
  PushMode Push = PushMode::Blocked;

  /// Sec. 4.6: free poisoning (paper default for all three profilers)
  /// or original TPP's checked poisoning (ablation).
  PoisonStyle Poison = PoisonStyle::Free;

  /// Sec. 7.4: routines with more paths than this hash their counters.
  uint64_t HashThreshold = 4000;

  /// Trace collection backend: instrument/plan exactly like the base
  /// preset, but collect by recording branch-target packets on the
  /// clean module and reconstructing the counters offline
  /// (src/trace/TraceDecoder) instead of counting on the hot path.
  bool TraceBackend = false;

  /// Timing-annotated tracing: in addition to branch-target packets,
  /// the recording interpreter stamps its accumulated cost counter at
  /// every Ret (delta-compressed), and the offline decode attributes
  /// inter-stamp cost to path executions (src/trace/PathTiming).
  /// Requires TraceBackend.
  bool TraceTimestamps = false;

  static ProfilerOptions pp();
  static ProfilerOptions tpp();
  static ProfilerOptions ppp();
  /// PPP for an online controller (src/adapt): same numbering and
  /// poisoning, but the overhead-minimization gates (skip-obvious,
  /// low-coverage) are off. Those gates assume the profile is the
  /// product; an adaptive deployment needs live counters in every
  /// routine as its hotness sensor, and sheds them routine by routine
  /// as it specializes.
  static ProfilerOptions adaptive();
  /// PPP's plan with trace-backend collection (TraceBackend = true).
  static ProfilerOptions trace();
  /// trace() with cost stamps (TraceTimestamps = true): the "trace+time"
  /// preset behind per-path latency attribution.
  static ProfilerOptions traceTimed();
  /// TPP as Joshi et al. published it: poison checks on every count in
  /// routines with cold edges (the paper's implementation substitutes
  /// free poisoning; this preset exists to measure the difference).
  static ProfilerOptions tppChecked();
};

/// Why a function received no instrumentation.
enum class SkipReason : uint8_t {
  NotSkipped,
  NoPaths,      ///< Cold removal eliminated every path.
  AllObvious,   ///< Every path has a defining edge (Sec. 3.2).
  HighCoverage, ///< Edge profile coverage above threshold (Sec. 4.1).
  Overflow,     ///< Path count exceeds 2^64; cannot number.
};

/// Per-function instrumentation plan and decode metadata. Holds
/// analyses over the *original* module, which must outlive the plan.
class FunctionPlan {
public:
  bool Instrumented = false;
  SkipReason Skip = SkipReason::NotSkipped;
  uint64_t NumPaths = 0;
  PathTable::Kind TableKind = PathTable::Kind::None;
  int64_t ArraySize = 0;
  double EdgeCoverage = 0.0; ///< DF/F of the edge profile (branch flow).
  uint64_t StaticOps = 0;    ///< Profiling instructions placed.
  std::set<int> ColdEdges;
  std::set<int> DisconnectedBackEdges;

  /// The instrumentation sites lowering materialized, in clean-CFG
  /// terms (entry / per-edge / pre-Ret op lists). The trace decoder
  /// replays these against recorded control flow to reconstruct the
  /// counters the instrumented module would have produced.
  SiteOps Sites;

  /// Shared with (and usually served by) a FunctionAnalysisManager;
  /// the shared_ptr keeps the analyses alive past cache invalidation.
  std::shared_ptr<const CfgView> Cfg;
  std::shared_ptr<const LoopInfo> Loops;
  std::unique_ptr<BLDag> Dag; ///< Final instrumented DAG (Vals assigned).
  NumberingResult Numbering;

  /// The unique path number of \p Key, or nullopt if the path is not
  /// instrumented (crosses a cold/disconnected edge, or the routine is
  /// skipped).
  std::optional<uint64_t> pathNumberOf(const PathKey &Key) const;

  /// Inverse: the concrete path for number \p Number in [0, NumPaths).
  std::optional<PathKey> decodePath(uint64_t Number) const;

  bool isInstrumentedPath(const PathKey &Key) const {
    return Instrumented && pathNumberOf(Key).has_value();
  }

  /// Called by the driver once the final DAG exists.
  void buildEdgeIndex();

private:
  // DAG edge lookup by CFG identity.
  std::unordered_map<int, int> RealByCfg;
  std::map<int, int> LoopEntryByBack;
  std::map<int, int> LoopExitByBack;
  std::map<BlockId, int> FnExitByBlock;
  int FnEntryEdge = -1;
};

/// An instrumented module plus its plans.
struct InstrumentationResult {
  Module Instrumented;
  std::vector<FunctionPlan> Plans;
  ProfilerOptions Options;

  /// Fresh zeroed counter tables matching the plans.
  ProfileRuntime makeRuntime() const;
};

/// Validates \p O's numeric knobs. Returns an empty string when every
/// value is usable, otherwise a description of the first problem
/// (fractions outside [0, 1], zero iteration/threshold counts, a
/// non-expanding self-adjust factor).
std::string validateProfilerOptions(const ProfilerOptions &O);

/// Instruments a clone of \p M according to \p Opts, using \p EP (self
/// advice) for every profile-guided decision. \p M must outlive the
/// result. Invalid options are a fatal error (validateProfilerOptions).
///
/// Defined in pass/Instrument.cpp (the staged pipeline); callers link
/// ppp_pass.
InstrumentationResult instrumentModule(const Module &M, const EdgeProfile &EP,
                                       const ProfilerOptions &Opts);

/// Flattens one instrumented run into the mergeable wire form the
/// profile-collection server (src/serve) aggregates: per function, the
/// runtime table's (index, count) pairs, the lost/cold/invalid spill
/// counters, and (when \p EP is non-null) the edge profile's counts.
/// The result is canonical, so equal runs serialize byte-identically.
CountsMessage countsFromRun(const std::string &Benchmark,
                            const InstrumentationResult &IR,
                            const ProfileRuntime &RT,
                            const EdgeProfile *EP = nullptr);

/// As above, but serving every per-function analysis from \p FAM, which
/// must be bound to \p M. Rebinds the manager's advice to \p EP; with
/// one manager serving several profiler configurations over one module,
/// the shared analyses (CFG, loops, full-DAG facts) are computed once.
InstrumentationResult instrumentModule(const Module &M, const EdgeProfile &EP,
                                       const ProfilerOptions &Opts,
                                       FunctionAnalysisManager &FAM);

} // namespace ppp

#endif // PPP_PATHPROF_PROFILERS_H
