//===- pathprof/Obvious.cpp - Obvious path and loop detection ---------------===//

#include "pathprof/Obvious.h"

#include "support/CheckedMath.h"

#include <algorithm>

using namespace ppp;

bool ppp::allPathsObvious(const BLDag &Dag, const NumberingResult &Numbering) {
  if (Numbering.NumPaths == 0)
    return true;
  if (Numbering.Overflow)
    return false; // Path counts unusable; be conservative.

  // Count paths that avoid every defining edge; zero means all obvious.
  size_t N = static_cast<size_t>(Dag.numNodes());
  std::vector<uint64_t> NoDef(N, 0);
  bool Overflow = false;
  const std::vector<int> &Topo = Dag.topoOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    int V = *It;
    if (V == Dag.exitNode()) {
      NoDef[static_cast<size_t>(V)] = 1;
      continue;
    }
    uint64_t Sum = 0;
    for (int EId : Dag.outEdges(V)) {
      const DagEdge &E = Dag.edge(EId);
      if (E.Cold)
        continue;
      bool Ovf = false;
      if (Numbering.pathsThrough(E, Ovf) == 1 && !Ovf)
        continue; // Defining edge: paths through it are obvious.
      Sum = saturatingAdd(Sum, NoDef[static_cast<size_t>(E.Dst)], Overflow);
    }
    NoDef[static_cast<size_t>(V)] = Sum;
  }
  return !Overflow && NoDef[static_cast<size_t>(Dag.entryNode())] == 0;
}

namespace {

/// Checks whether all body paths of \p L (header -> back-edge tail over
/// non-cold in-loop, non-back edges) are obvious.
bool loopBodyAllObvious(const CfgView &Cfg, const LoopInfo &LI, const Loop &L,
                        const std::set<int> &ColdCfgEdges) {
  // Block -> dense body index.
  std::vector<int> BodyIdx(Cfg.numBlocks(), -1);
  for (size_t I = 0; I < L.Blocks.size(); ++I)
    BodyIdx[static_cast<size_t>(L.Blocks[I])] = static_cast<int>(I);
  size_t N = L.Blocks.size();

  auto IsBodyEdge = [&](int EId) {
    const CfgEdge &E = Cfg.edge(EId);
    return BodyIdx[static_cast<size_t>(E.Src)] != -1 &&
           BodyIdx[static_cast<size_t>(E.Dst)] != -1 && !LI.isBackEdge(EId) &&
           ColdCfgEdges.count(EId) == 0;
  };
  auto IsBodyBackEdge = [&](int EId) {
    return std::find(L.BackEdgeIds.begin(), L.BackEdgeIds.end(), EId) !=
               L.BackEdgeIds.end() &&
           ColdCfgEdges.count(EId) == 0;
  };

  // Topological order of the body: global RPO restricted to body blocks
  // (acyclic once this loop's back edges are removed; the loop is
  // innermost, so it contains no other back edges).
  std::vector<BlockId> Order;
  for (BlockId B : reversePostOrder(Cfg))
    if (BodyIdx[static_cast<size_t>(B)] != -1)
      Order.push_back(B);

  bool Overflow = false;
  // In(v): paths header -> v.
  std::vector<uint64_t> In(N, 0);
  In[static_cast<size_t>(BodyIdx[static_cast<size_t>(L.Header)])] = 1;
  for (BlockId B : Order) {
    uint64_t Sum = In[static_cast<size_t>(BodyIdx[static_cast<size_t>(B)])];
    for (int EId : Cfg.inEdges(B))
      if (IsBodyEdge(EId))
        Sum = saturatingAdd(
            Sum,
            In[static_cast<size_t>(
                BodyIdx[static_cast<size_t>(Cfg.edge(EId).Src)])],
            Overflow);
    In[static_cast<size_t>(BodyIdx[static_cast<size_t>(B)])] = Sum;
  }

  // Out(v): paths v -> some back-edge tail (ending by taking the back
  // edge). NoDef(v): such paths avoiding every defining edge.
  std::vector<uint64_t> Out(N, 0), NoDef(N, 0);
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    BlockId B = *It;
    size_t BI = static_cast<size_t>(BodyIdx[static_cast<size_t>(B)]);
    uint64_t OutSum = 0, NoDefSum = 0;
    for (int EId : Cfg.outEdges(B)) {
      if (IsBodyBackEdge(EId)) {
        OutSum = saturatingAdd(OutSum, 1, Overflow);
        // The back edge is defining iff only one body path reaches B.
        if (In[BI] != 1)
          NoDefSum = saturatingAdd(NoDefSum, 1, Overflow);
        continue;
      }
      if (!IsBodyEdge(EId))
        continue;
      size_t WI = static_cast<size_t>(
          BodyIdx[static_cast<size_t>(Cfg.edge(EId).Dst)]);
      OutSum = saturatingAdd(OutSum, Out[WI], Overflow);
      bool Ovf = false;
      uint64_t Through = saturatingMul(In[BI], Out[WI], Ovf);
      if (Through == 1 && !Ovf)
        continue; // Defining edge.
      NoDefSum = saturatingAdd(NoDefSum, NoDef[WI], Overflow);
    }
    Out[BI] = OutSum;
    NoDef[BI] = NoDefSum;
  }
  size_t HI = static_cast<size_t>(BodyIdx[static_cast<size_t>(L.Header)]);
  if (Overflow)
    return false;
  return Out[HI] > 0 && NoDef[HI] == 0;
}

} // namespace

ObviousLoops ppp::findObviousLoops(const CfgView &Cfg, const LoopInfo &LI,
                                   const FunctionEdgeProfile &FP,
                                   const std::set<int> &ColdCfgEdges,
                                   double MinAvgTrip) {
  ObviousLoops R;
  const std::vector<Loop> &Loops = LI.loops();
  for (size_t I = 0; I < Loops.size(); ++I) {
    const Loop &L = Loops[I];
    if (!L.Natural || !L.isInnermost(Loops, I))
      continue;

    // Average trip count: header executions per entry from outside.
    int64_t Entries = L.Header == 0 ? FP.Invocations : 0;
    for (int EId : L.EntryEdgeIds)
      Entries += FP.EdgeFreq[static_cast<size_t>(EId)];
    if (Entries <= 0)
      continue; // Never entered; the cold criteria handle it.
    int64_t HeaderFreq = FP.blockFreq(Cfg, L.Header);
    double AvgTrip =
        static_cast<double>(HeaderFreq) / static_cast<double>(Entries);
    if (AvgTrip < MinAvgTrip)
      continue;

    if (!loopBodyAllObvious(Cfg, LI, L, ColdCfgEdges))
      continue;

    for (int EId : L.BackEdgeIds)
      R.DisconnectBackEdges.insert(EId);
    for (int EId : L.EntryEdgeIds)
      R.ColdEntryExitEdges.insert(EId);
    for (int EId : L.ExitEdgeIds)
      R.ColdEntryExitEdges.insert(EId);
  }
  return R;
}
