//===- pathprof/Obvious.h - Obvious path and loop detection ----*- C++ -*-===//
///
/// \file
/// Obvious-path identification (Sec. 3.2): a path is obvious if it has a
/// *defining edge* -- an edge on no other (non-cold) path -- because its
/// frequency can then be read directly off the edge profile. A routine
/// in which every path is obvious needs no instrumentation at all.
///
/// Obvious loops: innermost loops whose body paths are all obvious and
/// whose average trip count is high (>= 10) are *disconnected*: the back
/// edge loses its dummy edges (iteration boundaries become invisible),
/// and following this paper's variant of TPP, the loop's entrance and
/// exit edges are marked cold rather than truncating paths there.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PATHPROF_OBVIOUS_H
#define PPP_PATHPROF_OBVIOUS_H

#include "analysis/BLDag.h"
#include "pathprof/Numbering.h"
#include "profile/EdgeProfile.h"

#include <set>

namespace ppp {

/// True if every non-cold path in \p Dag has a defining edge (or there
/// are no paths at all). \p Numbering must come from assignPathNumbers
/// on the same DAG.
bool allPathsObvious(const BLDag &Dag, const NumberingResult &Numbering);

/// Loops to disconnect and the resulting additional cold edges.
struct ObviousLoops {
  std::set<int> DisconnectBackEdges; ///< Back-edge CFG ids.
  std::set<int> ColdEntryExitEdges;  ///< Loop entrance/exit CFG ids.
};

/// Finds innermost natural loops whose body paths (header to back-edge
/// tails over non-cold in-loop edges) are all obvious and whose average
/// trip count is at least \p MinAvgTrip.
ObviousLoops findObviousLoops(const CfgView &Cfg, const LoopInfo &LI,
                              const FunctionEdgeProfile &FP,
                              const std::set<int> &ColdCfgEdges,
                              double MinAvgTrip);

} // namespace ppp

#endif // PPP_PATHPROF_OBVIOUS_H
