//===- pathprof/Placement.cpp - Instrumentation placement -------------------===//

#include "pathprof/Placement.h"

#include <algorithm>
#include <cstdlib>
#include <cassert>
#include <limits>

using namespace ppp;

void EdgeOps::normalize() {
  if (HasSet && HasAdd) {
    SetVal += AddVal;
    HasAdd = false;
    AddVal = 0;
  }
  if (Count == CountKind::Indexed && HasAdd) {
    CountVal += AddVal;
    HasAdd = false;
    AddVal = 0;
  }
  if (Count == CountKind::Indexed && HasSet && !CountChecked) {
    // r is dead after the count (the path ends; the next path's init is
    // someone else's op), so the set folds away entirely. A *checked*
    // count must keep reading r: folding would erase the poison test.
    Count = CountKind::Const;
    CountVal += SetVal;
    HasSet = false;
    SetVal = 0;
  }
}

void EdgeOps::prependSet(int64_t V) {
  if (HasSet)
    return; // The existing (later) set overwrites the incoming one.
  HasSet = true;
  SetVal = V;
  normalize();
}

bool EdgeOps::appendCount(CountKind Kind, int64_t V, bool Checked) {
  if (Count != CountKind::None)
    return false;
  Count = Kind;
  CountVal = V;
  CountChecked = Checked;
  normalize();
  return true;
}

namespace {

/// Per-node range of remaining (non-cold) register increments from the
/// node to EXIT, computed before pushing (only chord adds exist then).
/// Used to pick poison constants that keep cold indices at or above N
/// despite negative increments (Sec. 4.6).
struct SuffixRanges {
  std::vector<int64_t> Min, Max;
  std::vector<bool> Reaches; ///< Node reaches EXIT via non-cold edges.
};

SuffixRanges computeSuffixRanges(const BLDag &Dag) {
  size_t N = static_cast<size_t>(Dag.numNodes());
  SuffixRanges S;
  S.Min.assign(N, 0);
  S.Max.assign(N, 0);
  S.Reaches.assign(N, false);
  const std::vector<int> &Topo = Dag.topoOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    int V = *It;
    if (V == Dag.exitNode()) {
      S.Reaches[static_cast<size_t>(V)] = true;
      continue;
    }
    int64_t Lo = std::numeric_limits<int64_t>::max();
    int64_t Hi = std::numeric_limits<int64_t>::min();
    bool Any = false;
    for (int EId : Dag.outEdges(V)) {
      const DagEdge &E = Dag.edge(EId);
      if (E.Cold || !S.Reaches[static_cast<size_t>(E.Dst)])
        continue;
      Any = true;
      Lo = std::min(Lo, E.Inc + S.Min[static_cast<size_t>(E.Dst)]);
      Hi = std::max(Hi, E.Inc + S.Max[static_cast<size_t>(E.Dst)]);
    }
    if (Any) {
      S.Reaches[static_cast<size_t>(V)] = true;
      S.Min[static_cast<size_t>(V)] = Lo;
      S.Max[static_cast<size_t>(V)] = Hi;
    }
  }
  return S;
}

/// The pushing engine.
class Pusher {
public:
  Pusher(const BLDag &Dag, std::vector<EdgeOps> &Ops, PushMode Mode,
         bool PinExitCounts)
      : Dag(Dag), Ops(Ops), Mode(Mode), PinExitCounts(PinExitCounts) {}

  void run() {
    if (Mode == PushMode::None)
      return;
    // Iterate to a fixpoint; each successful push strictly moves an op
    // along the DAG, so E*V bounds the work.
    bool Changed = true;
    unsigned Guard = Dag.numEdges() * static_cast<unsigned>(Dag.numNodes()) +
                     16;
    while (Changed && Guard-- > 0) {
      Changed = false;
      for (unsigned EId = 0; EId < Dag.numEdges(); ++EId) {
        if (tryPushDown(static_cast<int>(EId)))
          Changed = true;
        if (!PinExitCounts && tryPushUp(static_cast<int>(EId)))
          Changed = true;
      }
    }
  }

private:
  bool blocksMerging(int EId) const {
    // In IgnoreCold mode, cold edges neither block pushing...
    return !(Mode == PushMode::IgnoreCold && Dag.edge(EId).Cold);
  }

  /// Pushes `r = c` from edge \p EId down through its target.
  bool tryPushDown(int EId) {
    const DagEdge &E = Dag.edge(EId);
    EdgeOps &O = Ops[static_cast<size_t>(EId)];
    if (!O.onlySet() || E.Cold)
      return false;
    int V = E.Dst;
    if (V == Dag.exitNode())
      return false;
    // Safe only if this is the sole (non-ignored) way into V.
    for (int InId : Dag.inEdges(V))
      if (InId != EId && blocksMerging(InId))
        return false;
    const std::vector<int> &Out = Dag.outEdges(V);
    if (Out.empty())
      return false;
    // Only push when it cannot grow the instrumentation: a receiver
    // that already has ops folds the set for free; at most one may be
    // empty (the moved op itself).
    unsigned EmptyReceivers = 0;
    for (int OutId : Out)
      if (!Dag.edge(OutId).Cold && Ops[static_cast<size_t>(OutId)].empty())
        ++EmptyReceivers;
    if (EmptyReceivers > 1)
      return false;
    // Cold out-edges never receive inits: their poison op must stay
    // authoritative for the path register.
    for (int OutId : Out) {
      if (Dag.edge(OutId).Cold)
        continue;
      Ops[static_cast<size_t>(OutId)].prependSet(O.SetVal);
    }
    O = EdgeOps();
    return true;
  }

  /// Pushes a count from edge \p EId up through its source.
  bool tryPushUp(int EId) {
    const DagEdge &E = Dag.edge(EId);
    EdgeOps &O = Ops[static_cast<size_t>(EId)];
    if (!O.onlyCount() || E.Cold)
      return false;
    int U = E.Src;
    if (U == Dag.entryNode())
      return false;
    // Safe only if every (non-ignored) departure from U funnels into
    // this edge.
    for (int OutId : Dag.outEdges(U))
      if (OutId != EId && blocksMerging(OutId))
        return false;
    const std::vector<int> &In = Dag.inEdges(U);
    if (In.empty())
      return false;
    // All receivers must be able to take a count (no double counting),
    // and pushing must not grow the instrumentation: receivers with a
    // set or add fold the count for free; at most one may be empty.
    unsigned EmptyReceivers = 0;
    for (int InId : In) {
      const EdgeOps &RO = Ops[static_cast<size_t>(InId)];
      if (RO.Count != EdgeOps::CountKind::None)
        return false;
      if (RO.empty())
        ++EmptyReceivers;
    }
    if (EmptyReceivers > 1)
      return false;
    for (int InId : In) {
      bool Ok = Ops[static_cast<size_t>(InId)].appendCount(
          O.Count, O.CountVal, O.CountChecked);
      assert(Ok && "receiver rejected count after pre-check");
      (void)Ok;
    }
    O = EdgeOps();
    return true;
  }

  const BLDag &Dag;
  std::vector<EdgeOps> &Ops;
  PushMode Mode;
  bool PinExitCounts;
};

} // namespace

PlacementResult ppp::placeInstrumentation(const BLDag &Dag,
                                          const NumberingResult &Numbering,
                                          PushMode Mode,
                                          PoisonStyle Style,
                                          bool PinExitCounts) {
  PlacementResult R;
  R.Ops.assign(Dag.numEdges(), EdgeOps());
  int64_t N = static_cast<int64_t>(Numbering.NumPaths);

  SuffixRanges Suffix = computeSuffixRanges(Dag);

  bool AnyCold = false;
  for (const DagEdge &E : Dag.edges())
    AnyCold |= E.Cold;
  // Checked style only pays its test where poison can occur.
  bool Checked = Style == PoisonStyle::Checked && AnyCold;
  // A poison value so negative no chain of increments un-poisons it.
  // Individual event-counting increments are bounded by the vertex
  // potentials, not by N, so the bound must come from the computed
  // suffix ranges (plus margin for op movement during pushing).
  int64_t MaxAbsSuffix = 0;
  for (int V = 0; V < Dag.numNodes(); ++V) {
    if (!Suffix.Reaches[static_cast<size_t>(V)])
      continue;
    MaxAbsSuffix = std::max(
        {MaxAbsSuffix, std::abs(Suffix.Min[static_cast<size_t>(V)]),
         std::abs(Suffix.Max[static_cast<size_t>(V)])});
  }
  int64_t NegPoison = -(2 * MaxAbsSuffix + 4 * N + 1024);

  // --- Initial placement ---
  for (const DagEdge &E : Dag.edges()) {
    EdgeOps &O = R.Ops[static_cast<size_t>(E.Id)];
    if (E.Cold) {
      if (Checked) {
        O.prependSet(NegPoison);
        if (E.Dst == Dag.exitNode())
          O.appendCount(EdgeOps::CountKind::Indexed, 0, /*Checked=*/true);
      } else if (E.Dst == Dag.exitNode()) {
        // A path ending on a cold edge records straight into the poison
        // region (index N doubles as the shared cold counter).
        O.appendCount(EdgeOps::CountKind::Const, N);
      } else {
        // Free poisoning with compensation: after `r = N - minSuffix`,
        // the remaining non-cold increments leave the final index in
        // [N, N + (maxSuffix - minSuffix)] -- at most [N, 3N-1].
        int64_t MinSuf = Suffix.Reaches[static_cast<size_t>(E.Dst)]
                             ? Suffix.Min[static_cast<size_t>(E.Dst)]
                             : 0;
        O.prependSet(N - MinSuf);
      }
      continue;
    }
    if (E.Inc != 0) {
      O.HasAdd = true;
      O.AddVal = E.Inc;
    }
    if (E.Src == Dag.entryNode())
      O.prependSet(0);
    if (E.Dst == Dag.exitNode())
      O.appendCount(EdgeOps::CountKind::Indexed, 0, Checked);
    O.normalize();
  }

  // --- Pushing ---
  Pusher(Dag, R.Ops, Mode, PinExitCounts).run();

  // --- Forward interval analysis over the final ops: bound every
  // counter index (table sizing) and count static ops. ---
  size_t NumNodes = static_cast<size_t>(Dag.numNodes());
  constexpr int64_t Unset = std::numeric_limits<int64_t>::min();
  std::vector<int64_t> Lo(NumNodes, Unset), Hi(NumNodes, Unset);
  Lo[static_cast<size_t>(Dag.entryNode())] = 0;
  Hi[static_cast<size_t>(Dag.entryNode())] = 0;
  int64_t MinIdx = std::numeric_limits<int64_t>::max();
  int64_t MaxIdx = std::numeric_limits<int64_t>::min();
  auto Record = [&](int64_t L, int64_t H) {
    MinIdx = std::min(MinIdx, L);
    MaxIdx = std::max(MaxIdx, H);
  };
  for (int V : Dag.topoOrder()) {
    if (Lo[static_cast<size_t>(V)] == Unset)
      continue; // Unreachable.
    for (int EId : Dag.outEdges(V)) {
      const DagEdge &E = Dag.edge(EId);
      const EdgeOps &O = R.Ops[static_cast<size_t>(EId)];
      int64_t L = Lo[static_cast<size_t>(V)];
      int64_t H = Hi[static_cast<size_t>(V)];
      if (O.HasSet) {
        L = O.SetVal;
        H = O.SetVal;
      }
      if (O.HasAdd) {
        L += O.AddVal;
        H += O.AddVal;
      }
      if (O.Count == EdgeOps::CountKind::Indexed)
        Record(L + O.CountVal, H + O.CountVal);
      else if (O.Count == EdgeOps::CountKind::Const)
        Record(O.CountVal, O.CountVal);
      int64_t &DL = Lo[static_cast<size_t>(E.Dst)];
      int64_t &DH = Hi[static_cast<size_t>(E.Dst)];
      if (DL == Unset) {
        DL = L;
        DH = H;
      } else {
        DL = std::min(DL, L);
        DH = std::max(DH, H);
      }
    }
  }
  if (MaxIdx == std::numeric_limits<int64_t>::min()) {
    R.MinIndex = 0;
    R.MaxIndex = -1; // No counts placed at all.
  } else {
    R.MinIndex = MinIdx;
    R.MaxIndex = MaxIdx;
  }

  for (const EdgeOps &O : R.Ops)
    R.StaticOps += O.numOps();
  return R;
}
