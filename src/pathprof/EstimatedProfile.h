//===- pathprof/EstimatedProfile.h - Estimated path profiles ---*- C++ -*-===//
///
/// \file
/// Builds the estimated path profile of Section 5: measured frequencies
/// for the instrumented paths (decoded from the counter tables) plus
/// definite-flow estimates for everything the profiler chose not to
/// instrument (cold paths, disconnected loops, skipped routines).
///
/// Also exposes the pure edge-profile estimators (definite or potential
/// flow over every routine) used for the edge-profiling bars of
/// Figures 9 and 10 and for the paper's swim/mgrid exception.
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PATHPROF_ESTIMATEDPROFILE_H
#define PPP_PATHPROF_ESTIMATEDPROFILE_H

#include "flow/Reconstruct.h"
#include "interp/ProfileRuntime.h"
#include "pathprof/Profilers.h"
#include "profile/PathProfile.h"

namespace ppp {

/// Everything a profiler run produced, ready for the metrics.
struct ProfilerRunData {
  /// Measured + definite-flow-estimated profile (Sec. 5).
  PathProfile Estimated;
  /// Only the decoded measured counts (the MF of Sec. 6.2).
  PathProfile Measured;
  uint64_t ColdCounts = 0;    ///< Counts landing in the poison region.
  uint64_t LostCounts = 0;    ///< Hash-table conflicts.
  uint64_t InvalidCounts = 0; ///< Out-of-range indices (should be 0).

  /// Per-routine attribution of the same events (the scalars above are
  /// these vectors' sums). Indexed by FuncId; sized numFunctions().
  /// Stored counts every event the table retained -- decoded or not --
  /// so per function Stored + Lost + Invalid + the runtime's
  /// cold-checked spill accounts for every counting op executed (the
  /// conservation invariant the fuzzer checks per k).
  std::vector<uint64_t> FuncStored;
  std::vector<uint64_t> FuncLost;    ///< Hash conflicts.
  std::vector<uint64_t> FuncCold;    ///< Poison-region / cold decodes.
  std::vector<uint64_t> FuncInvalid; ///< Undecodable (malformed) ids.

  ProfilerRunData() : Estimated(0), Measured(0) {}
};

/// Per-function cap on flow-reconstructed paths.
inline constexpr size_t MaxReconstructedPaths = 50000;

/// Combines the counter tables in \p RT with definite-flow estimates
/// for uninstrumented paths. \p M and \p EP are the original module and
/// its edge profile (the same self-advice the instrumenter used).
ProfilerRunData buildEstimatedProfile(const Module &M, const EdgeProfile &EP,
                                      const InstrumentationResult &IR,
                                      const ProfileRuntime &RT);

/// Estimates a whole-program path profile from the edge profile alone
/// via definite or potential flow; paths below \p CutoffFlow (under
/// \p Metric) are omitted.
PathProfile estimateFromEdgeProfile(const Module &M, const EdgeProfile &EP,
                                    FlowKind Kind, uint64_t CutoffFlow,
                                    FlowMetric Metric);

} // namespace ppp

#endif // PPP_PATHPROF_ESTIMATEDPROFILE_H
