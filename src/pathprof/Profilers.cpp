//===- pathprof/Profilers.cpp - PP / TPP / PPP drivers ----------------------===//

#include "pathprof/Profilers.h"

#include "analysis/StaticProfile.h"
#include "flow/FlowAnalysis.h"
#include "pathprof/ColdEdges.h"
#include "pathprof/EventCounting.h"
#include "pathprof/Lowering.h"
#include "pathprof/Obvious.h"

#include <cassert>

using namespace ppp;

ProfilerOptions ProfilerOptions::pp() {
  ProfilerOptions O;
  O.Name = "pp";
  return O;
}

ProfilerOptions ProfilerOptions::tpp() {
  ProfilerOptions O;
  O.Name = "tpp";
  O.LocalColdCriterion = true;
  O.ColdOnlyToAvoidHash = true;
  O.ObviousLoopDisconnect = true;
  O.SkipObviousRoutines = true;
  return O;
}

ProfilerOptions ProfilerOptions::tppChecked() {
  ProfilerOptions O = tpp();
  O.Name = "tpp-checked";
  O.Poison = PoisonStyle::Checked;
  return O;
}

ProfilerOptions ProfilerOptions::ppp() {
  ProfilerOptions O;
  O.Name = "ppp";
  O.SmartNumbering = true;
  O.LocalColdCriterion = true;
  O.GlobalColdCriterion = true;
  O.SelfAdjust = true;
  O.ObviousLoopDisconnect = true;
  O.SkipObviousRoutines = true;
  O.LowCoverageGate = true;
  O.Push = PushMode::IgnoreCold;
  return O;
}

void FunctionPlan::buildEdgeIndex() {
  RealByCfg.clear();
  LoopEntryByBack.clear();
  LoopExitByBack.clear();
  FnExitByBlock.clear();
  FnEntryEdge = -1;
  for (const DagEdge &E : Dag->edges()) {
    switch (E.Kind) {
    case DagEdgeKind::Real:
      RealByCfg[E.CfgEdgeId] = E.Id;
      break;
    case DagEdgeKind::FnEntry:
      FnEntryEdge = E.Id;
      break;
    case DagEdgeKind::FnExit:
      FnExitByBlock[static_cast<BlockId>(E.Src)] = E.Id;
      break;
    case DagEdgeKind::LoopEntry:
      LoopEntryByBack[E.CfgEdgeId] = E.Id;
      break;
    case DagEdgeKind::LoopExit:
      LoopExitByBack[E.CfgEdgeId] = E.Id;
      break;
    }
  }
}

std::optional<uint64_t> FunctionPlan::pathNumberOf(const PathKey &Key) const {
  if (!Instrumented || !Dag)
    return std::nullopt;
  uint64_t Sum = 0;
  auto Take = [&](int DagEdgeId) -> const DagEdge * {
    if (DagEdgeId < 0)
      return nullptr;
    const DagEdge &E = Dag->edge(DagEdgeId);
    if (E.Cold)
      return nullptr;
    Sum += E.Val;
    return &E;
  };

  // Starting dummy edge.
  int StartId = -1;
  if (Key.StartCfgEdgeId == -1) {
    StartId = FnEntryEdge;
  } else if (auto It = LoopEntryByBack.find(Key.StartCfgEdgeId);
             It != LoopEntryByBack.end()) {
    StartId = It->second;
  }
  const DagEdge *E = Take(StartId);
  if (!E || E->Dst != Key.First)
    return std::nullopt;
  int Cur = E->Dst;

  // Interior real edges.
  for (int CfgId : Key.EdgeIds) {
    auto It = RealByCfg.find(CfgId);
    if (It == RealByCfg.end())
      return std::nullopt;
    E = Take(It->second);
    if (!E || E->Src != Cur)
      return std::nullopt;
    Cur = E->Dst;
  }

  // Terminal edge.
  int TermId = -1;
  if (Key.TermCfgEdgeId == -1) {
    auto It = FnExitByBlock.find(static_cast<BlockId>(Cur));
    if (It != FnExitByBlock.end())
      TermId = It->second;
  } else if (auto It = LoopExitByBack.find(Key.TermCfgEdgeId);
             It != LoopExitByBack.end()) {
    TermId = It->second;
  }
  E = Take(TermId);
  if (!E || E->Src != Cur)
    return std::nullopt;
  assert(Sum < NumPaths && "path number out of range");
  return Sum;
}

std::optional<PathKey> FunctionPlan::decodePath(uint64_t Number) const {
  if (!Instrumented || !Dag || Number >= NumPaths)
    return std::nullopt;
  PathKey Key;
  uint64_t Rem = Number;
  int V = Dag->entryNode();
  bool FirstEdge = true;
  while (V != Dag->exitNode()) {
    // Pick the out-edge whose [Val, Val + PathsFrom(dst)) interval
    // contains Rem: the non-cold edge with the largest Val <= Rem.
    const DagEdge *Best = nullptr;
    for (int EId : Dag->outEdges(V)) {
      const DagEdge &E = Dag->edge(EId);
      if (E.Cold ||
          Numbering.PathsFrom[static_cast<size_t>(E.Dst)] == 0)
        continue;
      if (E.Val > Rem)
        continue;
      if (!Best || E.Val > Best->Val)
        Best = &E;
    }
    if (!Best)
      return std::nullopt; // Should not happen for in-range numbers.
    Rem -= Best->Val;
    if (FirstEdge) {
      Key.First = Best->Dst;
      Key.StartCfgEdgeId =
          Best->Kind == DagEdgeKind::LoopEntry ? Best->CfgEdgeId : -1;
      FirstEdge = false;
    } else if (Best->Dst == Dag->exitNode()) {
      Key.TermCfgEdgeId =
          Best->Kind == DagEdgeKind::LoopExit ? Best->CfgEdgeId : -1;
    } else {
      Key.EdgeIds.push_back(Best->CfgEdgeId);
    }
    V = Best->Dst;
  }
  assert(Rem == 0 && "leftover path number after decoding");
  return Key;
}

namespace {

/// Path count of the function under a tentative cold/disconnect set
/// (order does not affect N).
uint64_t countPaths(const CfgView &Cfg, const LoopInfo &LI,
                    const std::set<int> &Colds, const std::set<int> &Disc,
                    const std::vector<int64_t> &CfgFreq, int64_t Invocations,
                    bool &Overflow) {
  BLDag::BuildOptions BO;
  BO.ColdCfgEdges = &Colds;
  BO.DisconnectedBackEdges = &Disc;
  BLDag Dag = BLDag::build(Cfg, LI, BO);
  Dag.setFrequencies(CfgFreq, Invocations);
  NumberingResult R = assignPathNumbers(Dag, NumberingOrder::BallLarus);
  Overflow = R.Overflow;
  return R.NumPaths;
}

} // namespace

InstrumentationResult ppp::instrumentModule(const Module &M,
                                            const EdgeProfile &EP,
                                            const ProfilerOptions &Opts) {
  InstrumentationResult Result;
  Result.Instrumented = M; // Deep copy; we rewrite functions in place.
  Result.Instrumented.Name = M.Name + "." + Opts.Name;
  Result.Options = Opts;
  Result.Plans.resize(M.numFunctions());

  int64_t TotalUnitFlow = totalProgramUnitFlow(M, EP);

  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    FuncId F = static_cast<FuncId>(FI);
    FunctionPlan &Plan = Result.Plans[FI];
    const FunctionEdgeProfile &FP = EP.func(F);

    Plan.Cfg = std::make_unique<CfgView>(M.function(F));
    Plan.Loops = std::make_unique<LoopInfo>(LoopInfo::compute(*Plan.Cfg));
    const CfgView &Cfg = *Plan.Cfg;
    const LoopInfo &LI = *Plan.Loops;

    std::vector<int64_t> CfgFreq(FP.EdgeFreq.begin(), FP.EdgeFreq.end());
    int64_t Invocations = FP.Invocations;

    // --- Full-DAG facts: coverage gate and the TPP hash gate. ---
    BLDag FullDag = BLDag::build(Cfg, LI);
    FullDag.setFrequencies(CfgFreq, Invocations);
    NumberingResult FullNum =
        assignPathNumbers(FullDag, NumberingOrder::BallLarus);

    {
      FlowResult DF = computeDefiniteFlow(FullDag);
      int64_t ActualFlow = 0;
      for (const DagEdge &E : FullDag.edges())
        if (E.IsBranch)
          ActualFlow += E.Freq;
      Plan.EdgeCoverage =
          ActualFlow == 0
              ? 1.0
              : static_cast<double>(
                    DF.totalFlowAtEntry(FullDag, FlowMetric::Branch)) /
                    static_cast<double>(ActualFlow);
    }
    if (Opts.LowCoverageGate && Plan.EdgeCoverage >= Opts.CoverageThreshold) {
      Plan.Skip = SkipReason::HighCoverage;
      continue;
    }

    // --- Cold edges, obvious loops, self-adjusting loop. ---
    ColdEdgeCriteria Criteria;
    Criteria.UseLocal = Opts.LocalColdCriterion;
    Criteria.LocalFraction = Opts.LocalColdFraction;
    Criteria.UseGlobal = Opts.GlobalColdCriterion;
    Criteria.GlobalFraction = Opts.GlobalColdFraction;

    std::set<int> Colds, Disc;
    std::unique_ptr<BLDag> Dag;
    NumberingResult Num;
    NumberingOrder Order = Opts.SmartNumbering
                               ? NumberingOrder::DecreasingFreq
                               : NumberingOrder::BallLarus;

    unsigned MaxIters = Opts.SelfAdjust ? Opts.SelfAdjustMaxIters : 1;
    for (unsigned Iter = 0; Iter < MaxIters; ++Iter) {
      Colds = computeColdEdges(Cfg, FP, Criteria, TotalUnitFlow);
      if (Opts.ColdOnlyToAvoidHash && !Colds.empty()) {
        // TPP: poisoning costs, so eliminate cold paths only when doing
        // so moves the routine from a hash table to an array.
        bool Ovf1 = false, Ovf2 = false;
        uint64_t Full = FullNum.Overflow ? UINT64_MAX : FullNum.NumPaths;
        std::set<int> NoDisc;
        uint64_t WithColds =
            countPaths(Cfg, LI, Colds, NoDisc, CfgFreq, Invocations, Ovf2);
        (void)Ovf1;
        bool Helps = Full > Opts.HashThreshold && !Ovf2 &&
                     WithColds <= Opts.HashThreshold;
        if (!Helps)
          Colds.clear();
      }
      Disc.clear();
      if (Opts.ObviousLoopDisconnect) {
        ObviousLoops OL =
            findObviousLoops(Cfg, LI, FP, Colds, Opts.ObviousLoopMinTrip);
        Disc = OL.DisconnectBackEdges;
        Colds.insert(OL.ColdEntryExitEdges.begin(),
                     OL.ColdEntryExitEdges.end());
      }
      BLDag::BuildOptions BO;
      BO.ColdCfgEdges = &Colds;
      BO.DisconnectedBackEdges = &Disc;
      Dag = std::make_unique<BLDag>(BLDag::build(Cfg, LI, BO));
      Dag->setFrequencies(CfgFreq, Invocations);
      Num = assignPathNumbers(*Dag, Order);
      if (!Num.Overflow && Num.NumPaths <= Opts.HashThreshold)
        break;
      if (!Opts.SelfAdjust || !Opts.GlobalColdCriterion)
        break;
      Criteria.GlobalMultiplier *= Opts.SelfAdjustFactor;
    }

    Plan.ColdEdges = Colds;
    Plan.DisconnectedBackEdges = Disc;
    Plan.NumPaths = Num.NumPaths;

    if (Num.Overflow) {
      Plan.Skip = SkipReason::Overflow;
      continue;
    }
    if (Num.NumPaths == 0) {
      Plan.Skip = SkipReason::NoPaths;
      continue;
    }
    if (Opts.SkipObviousRoutines && allPathsObvious(*Dag, Num)) {
      Plan.Skip = SkipReason::AllObvious;
      continue;
    }

    // --- Event counting. ---
    if (Opts.SmartNumbering) {
      runEventCounting(*Dag);
    } else {
      StaticProfile SP = estimateStaticProfile(Cfg, LI);
      runEventCounting(*Dag,
                       dagEdgeWeights(*Dag, SP.EdgeFreq, StaticProfile::Scale));
    }

    // --- Placement, pushing, poisoning, table sizing. ---
    PlacementResult Placement =
        placeInstrumentation(*Dag, Num, Opts.Push, Opts.Poison);
    Plan.StaticOps = Placement.StaticOps;

    bool UseHash = Num.NumPaths > Opts.HashThreshold;
    // Checked poisoning keeps hot indices in [0, N) and sends poisoned
    // ones (negative) to the cold counter, so N slots suffice.
    int64_t ArrayNeed = Opts.Poison == PoisonStyle::Checked
                            ? static_cast<int64_t>(Num.NumPaths)
                            : Placement.MaxIndex + 1;
    // Defensive: if compensation could not bound the array tightly,
    // hash instead of allocating a pathological array.
    if (!UseHash &&
        ArrayNeed > static_cast<int64_t>(16 * Num.NumPaths + 64))
      UseHash = true;
    Plan.TableKind = UseHash ? PathTable::Kind::Hash : PathTable::Kind::Array;
    Plan.ArraySize = UseHash ? 0 : std::max<int64_t>(ArrayNeed, 1);

    // --- Lower into the cloned function. ---
    SiteOps Sites = finalizeSites(*Dag, Placement);
    lowerInstrumentation(Result.Instrumented.function(F), Cfg, Sites);

    Plan.Dag = std::move(Dag);
    Plan.Numbering = std::move(Num);
    Plan.buildEdgeIndex();
    Plan.Instrumented = true;
  }
  return Result;
}

ProfileRuntime InstrumentationResult::makeRuntime() const {
  ProfileRuntime RT(static_cast<unsigned>(Plans.size()));
  for (size_t I = 0; I < Plans.size(); ++I) {
    const FunctionPlan &P = Plans[I];
    if (!P.Instrumented)
      continue;
    if (P.TableKind == PathTable::Kind::Hash)
      RT.setTable(static_cast<FuncId>(I), PathTable::makeHash());
    else
      RT.setTable(static_cast<FuncId>(I),
                  PathTable::makeArray(static_cast<uint64_t>(P.ArraySize)));
  }
  return RT;
}
