//===- pathprof/Profilers.cpp - PP / TPP / PPP drivers ----------------------===//

#include "pathprof/Profilers.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace ppp;

ProfilerOptions ProfilerOptions::pp() {
  ProfilerOptions O;
  O.Name = "pp";
  return O;
}

ProfilerOptions ProfilerOptions::tpp() {
  ProfilerOptions O;
  O.Name = "tpp";
  O.LocalColdCriterion = true;
  O.ColdOnlyToAvoidHash = true;
  O.ObviousLoopDisconnect = true;
  O.SkipObviousRoutines = true;
  return O;
}

ProfilerOptions ProfilerOptions::tppChecked() {
  ProfilerOptions O = tpp();
  O.Name = "tpp-checked";
  O.Poison = PoisonStyle::Checked;
  return O;
}

ProfilerOptions ProfilerOptions::ppp() {
  ProfilerOptions O;
  O.Name = "ppp";
  O.SmartNumbering = true;
  O.LocalColdCriterion = true;
  O.GlobalColdCriterion = true;
  O.SelfAdjust = true;
  O.ObviousLoopDisconnect = true;
  O.SkipObviousRoutines = true;
  O.LowCoverageGate = true;
  O.Push = PushMode::IgnoreCold;
  return O;
}

ProfilerOptions ProfilerOptions::adaptive() {
  ProfilerOptions O = ppp();
  O.Name = "adaptive";
  O.SkipObviousRoutines = false;
  O.LowCoverageGate = false;
  return O;
}

ProfilerOptions ProfilerOptions::trace() {
  ProfilerOptions O = ppp();
  O.Name = "trace";
  O.TraceBackend = true;
  return O;
}

ProfilerOptions ProfilerOptions::traceTimed() {
  ProfilerOptions O = trace();
  O.Name = "trace+time";
  O.TraceTimestamps = true;
  return O;
}

const char *ppp::kDemoteReasonName(KDemoteReason R) {
  switch (R) {
  case KDemoteReason::None:
    return "none";
  case KDemoteReason::PathCountOverflow:
    return "path-count-overflow";
  case KDemoteReason::IdSpaceOverflow:
    return "id-space-overflow";
  case KDemoteReason::CheckedPoisoning:
    return "checked-poisoning";
  case KDemoteReason::TraceBackend:
    return "trace-backend";
  }
  return "<invalid>";
}

void FunctionPlan::buildEdgeIndex() {
  RealByCfg.clear();
  LoopEntryByBack.clear();
  LoopExitByBack.clear();
  FnExitByBlock.clear();
  FnEntryEdge = -1;
  for (const DagEdge &E : Dag->edges()) {
    switch (E.Kind) {
    case DagEdgeKind::Real:
      RealByCfg[E.CfgEdgeId] = E.Id;
      break;
    case DagEdgeKind::FnEntry:
      FnEntryEdge = E.Id;
      break;
    case DagEdgeKind::FnExit:
      FnExitByBlock[static_cast<BlockId>(E.Src)] = E.Id;
      break;
    case DagEdgeKind::LoopEntry:
      LoopEntryByBack[E.CfgEdgeId] = E.Id;
      break;
    case DagEdgeKind::LoopExit:
      LoopExitByBack[E.CfgEdgeId] = E.Id;
      break;
    }
  }
}

std::optional<uint64_t> FunctionPlan::pathNumberOf(const PathKey &Key) const {
  if (!Instrumented || !Dag)
    return std::nullopt;
  uint64_t Sum = 0;
  auto Take = [&](int DagEdgeId) -> const DagEdge * {
    if (DagEdgeId < 0)
      return nullptr;
    const DagEdge &E = Dag->edge(DagEdgeId);
    if (E.Cold)
      return nullptr;
    Sum += E.Val;
    return &E;
  };

  // Starting dummy edge.
  int StartId = -1;
  if (Key.StartCfgEdgeId == -1) {
    StartId = FnEntryEdge;
  } else if (auto It = LoopEntryByBack.find(Key.StartCfgEdgeId);
             It != LoopEntryByBack.end()) {
    StartId = It->second;
  }
  const DagEdge *E = Take(StartId);
  if (!E || E->Dst != Key.First)
    return std::nullopt;
  int Cur = E->Dst;

  // Interior real edges.
  for (int CfgId : Key.EdgeIds) {
    auto It = RealByCfg.find(CfgId);
    if (It == RealByCfg.end())
      return std::nullopt;
    E = Take(It->second);
    if (!E || E->Src != Cur)
      return std::nullopt;
    Cur = E->Dst;
  }

  // Terminal edge.
  int TermId = -1;
  if (Key.TermCfgEdgeId == -1) {
    auto It = FnExitByBlock.find(static_cast<BlockId>(Cur));
    if (It != FnExitByBlock.end())
      TermId = It->second;
  } else if (auto It = LoopExitByBack.find(Key.TermCfgEdgeId);
             It != LoopExitByBack.end()) {
    TermId = It->second;
  }
  E = Take(TermId);
  if (!E || E->Src != Cur)
    return std::nullopt;
  assert(Sum < NumPaths && "path number out of range");
  return Sum;
}

std::optional<PathKey> FunctionPlan::decodePath(uint64_t Number) const {
  if (!Instrumented || !Dag || Number >= NumPaths)
    return std::nullopt;
  PathKey Key;
  uint64_t Rem = Number;
  int V = Dag->entryNode();
  bool FirstEdge = true;
  while (V != Dag->exitNode()) {
    // Pick the out-edge whose [Val, Val + PathsFrom(dst)) interval
    // contains Rem: the non-cold edge with the largest Val <= Rem.
    const DagEdge *Best = nullptr;
    for (int EId : Dag->outEdges(V)) {
      const DagEdge &E = Dag->edge(EId);
      if (E.Cold ||
          Numbering.PathsFrom[static_cast<size_t>(E.Dst)] == 0)
        continue;
      if (E.Val > Rem)
        continue;
      if (!Best || E.Val > Best->Val)
        Best = &E;
    }
    if (!Best)
      return std::nullopt; // Should not happen for in-range numbers.
    Rem -= Best->Val;
    if (FirstEdge) {
      Key.First = Best->Dst;
      Key.StartCfgEdgeId =
          Best->Kind == DagEdgeKind::LoopEntry ? Best->CfgEdgeId : -1;
      FirstEdge = false;
    } else if (Best->Dst == Dag->exitNode()) {
      Key.TermCfgEdgeId =
          Best->Kind == DagEdgeKind::LoopExit ? Best->CfgEdgeId : -1;
    } else {
      Key.EdgeIds.push_back(Best->CfgEdgeId);
    }
    V = Best->Dst;
  }
  assert(Rem == 0 && "leftover path number after decoding");
  return Key;
}

std::optional<std::vector<PathKey>>
FunctionPlan::decodeKPath(int64_t Id) const {
  if (!chained() || Id < 1 || Id >= IdBound)
    return std::nullopt;

  // Peel the base-M digits least-significant first. Every flushed
  // segment contributed a digit in [1, M-1], so a zero digit anywhere
  // (leading zeros vanish in the peel, making digit count == segment
  // count) marks an id no valid chain can produce.
  uint64_t Rem = static_cast<uint64_t>(Id);
  uint64_t M = static_cast<uint64_t>(ChainMult);
  std::vector<uint64_t> Digits;
  while (Rem != 0) {
    Digits.push_back(Rem % M);
    Rem /= M;
  }
  std::reverse(Digits.begin(), Digits.end());
  if (Digits.size() > KEffective)
    return std::nullopt;

  std::vector<PathKey> Segs;
  Segs.reserve(Digits.size());
  for (uint64_t D : Digits) {
    if (D == 0)
      return std::nullopt;
    uint64_t Seg = D - 1;
    // Digits beyond the numbered space are poison (a cold edge wrote
    // the free-poison region [N, 3N) or counted the cold constant N).
    if (Seg >= NumPaths)
      return std::nullopt;
    std::optional<PathKey> Key = decodePath(Seg);
    if (!Key)
      return std::nullopt;
    Segs.push_back(std::move(*Key));
  }

  // Structural chaining: segment i must end on the back edge segment
  // i+1 re-enters through; only the last segment may end at a Ret, and
  // a chain shorter than KEffective can only have been cut by a Ret.
  for (size_t I = 0; I < Segs.size(); ++I) {
    bool Last = I + 1 == Segs.size();
    if (!Last) {
      if (Segs[I].TermCfgEdgeId == -1 ||
          Segs[I + 1].StartCfgEdgeId != Segs[I].TermCfgEdgeId)
        return std::nullopt;
    } else if (Segs[I].TermCfgEdgeId != -1 && Segs.size() < KEffective) {
      return std::nullopt;
    }
  }
  return Segs;
}

std::string ppp::validateProfilerOptions(const ProfilerOptions &O) {
  auto BadFraction = [](double V) { return !(V >= 0.0 && V <= 1.0); };
  if (BadFraction(O.LocalColdFraction))
    return formatString("LocalColdFraction must be in [0, 1] (got %g)",
                        O.LocalColdFraction);
  if (BadFraction(O.GlobalColdFraction))
    return formatString("GlobalColdFraction must be in [0, 1] (got %g)",
                        O.GlobalColdFraction);
  if (BadFraction(O.CoverageThreshold))
    return formatString("CoverageThreshold must be in [0, 1] (got %g)",
                        O.CoverageThreshold);
  if (O.SelfAdjustMaxIters < 1)
    return formatString("SelfAdjustMaxIters must be >= 1 (got %u)",
                        O.SelfAdjustMaxIters);
  if (O.HashThreshold < 1)
    return formatString("HashThreshold must be >= 1 (got %llu)",
                        (unsigned long long)O.HashThreshold);
  if (O.KIterations < 1)
    return formatString("KIterations must be >= 1 (got %llu)",
                        (unsigned long long)O.KIterations);
  if (O.KIterations > ProfilerOptions::MaxKIterations)
    return formatString("KIterations must be <= %llu (got %llu)",
                        (unsigned long long)ProfilerOptions::MaxKIterations,
                        (unsigned long long)O.KIterations);
  if (O.SelfAdjust && !(O.SelfAdjustFactor > 1.0))
    return formatString("SelfAdjustFactor must be > 1 when SelfAdjust is "
                        "enabled (got %g)",
                        O.SelfAdjustFactor);
  return "";
}

// instrumentModule() lives in pass/Instrument.cpp: the pipeline is five
// stage passes over a ModulePassManager, and its analyses come from a
// FunctionAnalysisManager.

ProfileRuntime InstrumentationResult::makeRuntime() const {
  ProfileRuntime RT(static_cast<unsigned>(Plans.size()));
  for (size_t I = 0; I < Plans.size(); ++I) {
    const FunctionPlan &P = Plans[I];
    if (!P.Instrumented)
      continue;
    if (P.TableKind == PathTable::Kind::Hash)
      RT.setTable(static_cast<FuncId>(I), PathTable::makeHash());
    else
      RT.setTable(static_cast<FuncId>(I),
                  PathTable::makeArray(static_cast<uint64_t>(P.ArraySize)));
    if (P.KEffective > 1)
      RT.setChain(static_cast<FuncId>(I),
                  {P.ChainMult, static_cast<uint32_t>(P.KEffective)});
  }
  return RT;
}

CountsMessage ppp::countsFromRun(const std::string &Benchmark,
                                 const InstrumentationResult &IR,
                                 const ProfileRuntime &RT,
                                 const EdgeProfile *EP) {
  assert(IR.Plans.size() == RT.numFunctions() &&
         "runtime was not built from this instrumentation result");
  CountsMessage M;
  M.Benchmark = Benchmark;
  unsigned NumFuncs = RT.numFunctions();
  for (unsigned F = 0; F < NumFuncs; ++F) {
    FunctionCounts FC;
    FC.Func = F;
    FC.PathCounts = RT.collectCounts(static_cast<FuncId>(F));
    const PathTable &T = RT.table(static_cast<FuncId>(F));
    FC.Lost = T.lostCount();
    FC.Cold = T.coldCheckedCount();
    FC.Invalid = T.invalidCount();
    if (EP && F < EP->Funcs.size()) {
      const FunctionEdgeProfile &FEP = EP->Funcs[F];
      for (size_t E = 0; E < FEP.EdgeFreq.size(); ++E)
        if (FEP.EdgeFreq[E] > 0)
          FC.EdgeCounts.emplace_back(static_cast<uint32_t>(E),
                                     static_cast<uint64_t>(FEP.EdgeFreq[E]));
    }
    M.Funcs.push_back(std::move(FC));
  }
  canonicalizeCounts(M);
  return M;
}
