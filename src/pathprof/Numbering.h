//===- pathprof/Numbering.h - Path numbering -------------------*- C++ -*-===//
///
/// \file
/// Ball-Larus path numbering (Figure 2) and PPP's smart variant
/// (Figure 6). Assigns Val(e) to every non-cold DAG edge so the sum of
/// Vals along each ENTRY->EXIT path is a unique number in [0, N-1].
///
/// The two orders differ only in how a block's out-edges are visited:
///  - BallLarus: increasing NumPaths of the target's subgraph, which
///    minimizes the magnitude of edge values.
///  - DecreasingFreq: hottest edge first, so the hottest outgoing edge
///    gets Val 0 and usually ends up increment-free (Sec. 4.5).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PATHPROF_NUMBERING_H
#define PPP_PATHPROF_NUMBERING_H

#include "analysis/BLDag.h"

#include <cstdint>
#include <vector>

namespace ppp {

enum class NumberingOrder : uint8_t {
  BallLarus,      ///< Increasing NumPaths(target) (Fig. 2).
  DecreasingFreq, ///< Decreasing edge frequency (Fig. 6, "SPN").
};

/// Result of numbering one DAG.
struct NumberingResult {
  /// Total paths N; path numbers occupy [0, N-1].
  uint64_t NumPaths = 0;
  /// Path count arithmetic overflowed 64 bits; Vals are unusable.
  bool Overflow = false;
  /// Per DAG node: number of (non-cold) paths from the node to EXIT.
  std::vector<uint64_t> PathsFrom;
  /// Per DAG node: number of (non-cold) paths from ENTRY to the node.
  std::vector<uint64_t> PathsTo;

  /// Number of complete paths using edge \p E = PathsTo[src]*PathsFrom[dst].
  uint64_t pathsThrough(const DagEdge &E, bool &Ovf) const;
};

/// Numbers \p Dag in place (writes DagEdge::Val on non-cold edges) and
/// returns path counts. \p Dag must have frequencies assigned when
/// \p Order == DecreasingFreq.
NumberingResult assignPathNumbers(BLDag &Dag, NumberingOrder Order);

/// Counts the k-iteration paths of \p Dag: chains of up to \p K acyclic
/// path segments joined at connected back edges (a chain extends where
/// a LoopExit dummy edge meets its partner LoopEntry edge, and flushes
/// at a Ret or after its K-th segment). Only chains made entirely of
/// non-cold segments count -- a poisoned digit makes the whole id
/// decode-invalid, so cold continuations add no valid ids. K == 1
/// degenerates to the plain acyclic path count. All arithmetic
/// saturates at UINT64_MAX; \p Overflow is set (never cleared) when any
/// sum does, in which case the result is a meaningless saturated bound
/// and the caller must demote the function to k=1.
uint64_t countKIterPaths(const BLDag &Dag, uint64_t K, bool &Overflow);

} // namespace ppp

#endif // PPP_PATHPROF_NUMBERING_H
