//===- pathprof/ColdEdges.h - Cold edge criteria ---------------*- C++ -*-===//
///
/// \file
/// Cold-edge identification (Sections 3.2, 4.2, 4.3):
///
///  - TPP's local criterion: an edge is cold if its frequency is below a
///    fraction (default 5%) of its source block's frequency.
///  - PPP's global criterion: an edge is cold if its frequency is below
///    a fraction (default 0.1%) of total program flow in unit-flow terms
///    (total dynamic path executions). The self-adjusting criterion
///    raises this threshold multiplicatively until the routine's path
///    count drops below the hashing threshold.
///
/// An edge is cold if *either* enabled criterion applies. Never-executed
/// blocks' edges are cold under the local criterion (0-frequency code is
/// the coldest there is).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PATHPROF_COLDEDGES_H
#define PPP_PATHPROF_COLDEDGES_H

#include "ir/Module.h"
#include "profile/EdgeProfile.h"

#include <set>

namespace ppp {

struct ColdEdgeCriteria {
  bool UseLocal = false;
  double LocalFraction = 0.05; ///< freq(e) < frac * freq(src block).
  bool UseGlobal = false;
  double GlobalFraction = 0.001; ///< freq(e) < frac * total unit flow.
  double GlobalMultiplier = 1.0; ///< Raised by the self-adjusting loop.
};

/// Returns the CFG edge ids of \p Cfg's function that are cold under
/// \p Criteria. \p TotalProgramUnitFlow is the program-wide dynamic path
/// count (see totalProgramUnitFlow()).
std::set<int> computeColdEdges(const CfgView &Cfg,
                               const FunctionEdgeProfile &FP,
                               const ColdEdgeCriteria &Criteria,
                               int64_t TotalProgramUnitFlow);

/// Total program flow in unit-flow terms: the number of dynamic paths,
/// i.e. for every function its invocation count plus all back-edge
/// traversals (each starts a fresh path).
int64_t totalProgramUnitFlow(const Module &M, const EdgeProfile &EP);

} // namespace ppp

#endif // PPP_PATHPROF_COLDEDGES_H
