//===- pathprof/Lowering.cpp - Materializing instrumentation ----------------===//

#include "pathprof/Lowering.h"

#include <cassert>

using namespace ppp;

uint64_t SiteOps::numOps() const {
  uint64_t N = EntryOps.size();
  for (const auto &[Id, Ops] : EdgeOps)
    N += Ops.size();
  for (const auto &[B, Ops] : RetOps)
    N += Ops.size();
  return N;
}

namespace {

/// Which count opcode family a site uses: plain counting, a chain step
/// (back edge: fold into the accumulator or flush on depth exhaustion),
/// or a chain flush (Ret).
enum class CountForm : uint8_t { Plain, ChainStep, ChainRet };

void appendOps(std::vector<ProfOp> &Out, const EdgeOps &O,
               CountForm Form = CountForm::Plain) {
  if (O.HasSet)
    Out.push_back({Opcode::ProfSet, O.SetVal});
  if (O.HasAdd)
    Out.push_back({Opcode::ProfAdd, O.AddVal});
  if (O.Count == EdgeOps::CountKind::Indexed) {
    assert((Form == CountForm::Plain || !O.CountChecked) &&
           "checked counts never chain; plans demote to k=1 first");
    Opcode Op = Form == CountForm::ChainStep  ? Opcode::ProfChainIdx
                : Form == CountForm::ChainRet ? Opcode::ProfChainRetIdx
                : O.CountChecked              ? Opcode::ProfCheckedCountIdx
                                              : Opcode::ProfCountIdx;
    Out.push_back({Op, O.CountVal});
  } else if (O.Count == EdgeOps::CountKind::Const) {
    Opcode Op = Form == CountForm::ChainStep  ? Opcode::ProfChainConst
                : Form == CountForm::ChainRet ? Opcode::ProfChainRetConst
                                              : Opcode::ProfCountConst;
    Out.push_back({Op, O.CountVal});
  }
}

Instr makeInstr(const ProfOp &P) {
  Instr I;
  I.Op = P.Op;
  I.Imm = P.Imm;
  return I;
}

} // namespace

SiteOps ppp::finalizeSites(const BLDag &Dag, const PlacementResult &Placement,
                           bool Chained) {
  SiteOps S;
  // Back edges need LoopExit ops before LoopEntry ops; gather per back
  // edge first.
  std::map<int, EdgeOps> BackExit, BackEntry;

  for (const DagEdge &E : Dag.edges()) {
    const EdgeOps &O = Placement.Ops[static_cast<size_t>(E.Id)];
    if (O.empty())
      continue;
    switch (E.Kind) {
    case DagEdgeKind::FnEntry:
      assert((!Chained || O.Count == EdgeOps::CountKind::None) &&
             "chained counts must stay pinned on dummy exit edges");
      appendOps(S.EntryOps, O);
      break;
    case DagEdgeKind::Real:
      assert((!Chained || O.Count == EdgeOps::CountKind::None) &&
             "chained counts must stay pinned on dummy exit edges");
      appendOps(S.EdgeOps[E.CfgEdgeId], O);
      break;
    case DagEdgeKind::FnExit:
      appendOps(S.RetOps[static_cast<BlockId>(E.Src)], O,
                Chained ? CountForm::ChainRet : CountForm::Plain);
      break;
    case DagEdgeKind::LoopExit:
      BackExit[E.CfgEdgeId] = O;
      break;
    case DagEdgeKind::LoopEntry:
      BackEntry[E.CfgEdgeId] = O;
      break;
    }
  }

  for (const auto &[BackId, O] : BackExit)
    appendOps(S.EdgeOps[BackId], O,
              Chained ? CountForm::ChainStep : CountForm::Plain);
  for (const auto &[BackId, O] : BackEntry)
    appendOps(S.EdgeOps[BackId], O);
  return S;
}

uint64_t ppp::lowerInstrumentation(Function &F, const CfgView &OrigCfg,
                                   const SiteOps &Sites) {
  uint64_t Added = 0;
  auto InsertBeforeTerminator = [&](BlockId B,
                                    const std::vector<ProfOp> &Ops) {
    BasicBlock &BB = F.block(B);
    assert(!BB.Instrs.empty());
    auto Pos = BB.Instrs.end() - 1;
    for (const ProfOp &P : Ops) {
      Pos = BB.Instrs.insert(Pos, makeInstr(P));
      ++Pos;
    }
    Added += Ops.size();
  };
  auto InsertAtTop = [&](BlockId B, const std::vector<ProfOp> &Ops) {
    BasicBlock &BB = F.block(B);
    BB.Instrs.insert(BB.Instrs.begin(), Ops.size(), Instr());
    for (size_t I = 0; I < Ops.size(); ++I)
      BB.Instrs[I] = makeInstr(Ops[I]);
    Added += Ops.size();
  };

  // --- Edge ops (sites decided against the original CFG; splits only
  // append blocks, so ids stay stable). ---
  for (const auto &[EdgeId, Ops] : Sites.EdgeOps) {
    if (Ops.empty())
      continue;
    const CfgEdge &E = OrigCfg.edge(EdgeId);
    if (OrigCfg.outEdges(E.Src).size() == 1) {
      InsertBeforeTerminator(E.Src, Ops);
      continue;
    }
    if (E.Dst != 0 && OrigCfg.inEdges(E.Dst).size() == 1) {
      InsertAtTop(E.Dst, Ops);
      continue;
    }
    // Split the (critical) edge with a fresh block.
    BlockId NewId = static_cast<BlockId>(F.Blocks.size());
    F.Blocks.emplace_back();
    BasicBlock &NB = F.Blocks.back();
    for (const ProfOp &P : Ops)
      NB.Instrs.push_back(makeInstr(P));
    Instr Jump;
    Jump.Op = Opcode::Br;
    Jump.Targets = {E.Dst};
    NB.Instrs.push_back(std::move(Jump));
    F.block(E.Src).terminator().Targets[E.SuccIdx] = NewId;
    Added += Ops.size() + 1;
  }

  // --- Ret ops. ---
  for (const auto &[B, Ops] : Sites.RetOps)
    InsertBeforeTerminator(B, Ops);

  // --- Entry ops: once per invocation. If the entry block has
  // predecessors (it is a loop header), divert its body into a fresh
  // block and leave block 0 as a pure invocation stub. ---
  if (!Sites.EntryOps.empty()) {
    if (OrigCfg.inEdges(0).empty()) {
      InsertAtTop(0, Sites.EntryOps);
    } else {
      BlockId BodyId = static_cast<BlockId>(F.Blocks.size());
      F.Blocks.emplace_back();
      std::swap(F.Blocks[static_cast<size_t>(BodyId)].Instrs,
                F.Blocks[0].Instrs);
      for (const ProfOp &P : Sites.EntryOps)
        F.Blocks[0].Instrs.push_back(makeInstr(P));
      Instr Jump;
      Jump.Op = Opcode::Br;
      Jump.Targets = {BodyId};
      F.Blocks[0].Instrs.push_back(std::move(Jump));
      // Every jump that targeted block 0 (back edges, splits) now means
      // the relocated body.
      for (size_t BI = 1; BI < F.Blocks.size(); ++BI) {
        Instr &T = F.Blocks[BI].terminator();
        for (BlockId &Tgt : T.Targets)
          if (Tgt == 0)
            Tgt = BodyId;
      }
      Added += Sites.EntryOps.size() + 1;
    }
  }
  return Added;
}
