//===- pathprof/EventCounting.cpp - Ball's event counting -------------------===//

#include "pathprof/EventCounting.h"

#include "support/Dsu.h"

#include <algorithm>
#include <cassert>

using namespace ppp;

std::vector<int64_t>
ppp::dagEdgeWeights(const BLDag &Dag, const std::vector<int64_t> &CfgEdgeFreq,
                    int64_t Invocations) {
  const CfgView &Cfg = Dag.cfg();
  std::vector<int64_t> BlockExec(Cfg.numBlocks(), 0);
  for (unsigned B = 0; B < Cfg.numBlocks(); ++B) {
    int64_t In = B == 0 ? Invocations : 0;
    for (int EId : Cfg.inEdges(static_cast<BlockId>(B)))
      In += CfgEdgeFreq[static_cast<size_t>(EId)];
    BlockExec[B] = In;
  }
  std::vector<int64_t> W(Dag.numEdges(), 0);
  for (const DagEdge &E : Dag.edges()) {
    switch (E.Kind) {
    case DagEdgeKind::Real:
    case DagEdgeKind::LoopEntry:
    case DagEdgeKind::LoopExit:
      W[static_cast<size_t>(E.Id)] = CfgEdgeFreq[static_cast<size_t>(E.CfgEdgeId)];
      break;
    case DagEdgeKind::FnEntry:
      W[static_cast<size_t>(E.Id)] = Invocations;
      break;
    case DagEdgeKind::FnExit:
      W[static_cast<size_t>(E.Id)] = BlockExec[static_cast<size_t>(E.Src)];
      break;
    }
  }
  return W;
}

void ppp::runEventCounting(BLDag &Dag, const std::vector<int64_t> &Weights) {
  assert(Weights.size() == Dag.numEdges() && "one weight per DAG edge");
  size_t NumNodes = static_cast<size_t>(Dag.numNodes());

  // Kruskal maximum spanning tree over non-cold edges, with ENTRY and
  // EXIT pre-united: that encodes the virtual EXIT->ENTRY edge, which
  // Ball-Larus weights as the hottest "edge" so it is always on the
  // tree.
  std::vector<int> ByWeight;
  ByWeight.reserve(Dag.numEdges());
  for (const DagEdge &E : Dag.edges()) {
    if (!E.Cold)
      ByWeight.push_back(E.Id);
    Dag.edge(E.Id).OnTree = false;
    Dag.edge(E.Id).Inc = 0;
  }
  std::stable_sort(ByWeight.begin(), ByWeight.end(), [&](int A, int B) {
    return Weights[static_cast<size_t>(A)] > Weights[static_cast<size_t>(B)];
  });

  Dsu Union(NumNodes);
  Union.unite(static_cast<size_t>(Dag.entryNode()),
              static_cast<size_t>(Dag.exitNode()));
  std::vector<std::vector<int>> TreeAdj(NumNodes);
  for (int EId : ByWeight) {
    const DagEdge &E = Dag.edge(EId);
    if (!Union.unite(static_cast<size_t>(E.Src), static_cast<size_t>(E.Dst)))
      continue;
    Dag.edge(EId).OnTree = true;
    TreeAdj[static_cast<size_t>(E.Src)].push_back(EId);
    TreeAdj[static_cast<size_t>(E.Dst)].push_back(EId);
  }

  // Solve potentials along the tree: phi(ENTRY) = phi(EXIT) = 0 and
  // Val(e) + phi(src) - phi(dst) = 0 for tree edges.
  std::vector<int64_t> Phi(NumNodes, 0);
  std::vector<bool> Visited(NumNodes, false);
  std::vector<int> Work;
  auto Visit = [&](int Node) {
    if (!Visited[static_cast<size_t>(Node)]) {
      Visited[static_cast<size_t>(Node)] = true;
      Work.push_back(Node);
    }
  };
  Visit(Dag.entryNode());
  Phi[static_cast<size_t>(Dag.entryNode())] = 0;
  // The virtual edge fixes EXIT's potential too.
  Visit(Dag.exitNode());
  Phi[static_cast<size_t>(Dag.exitNode())] = 0;
  auto Drain = [&] {
    while (!Work.empty()) {
      int V = Work.back();
      Work.pop_back();
      for (int EId : TreeAdj[static_cast<size_t>(V)]) {
        const DagEdge &E = Dag.edge(EId);
        int64_t Val = static_cast<int64_t>(E.Val);
        if (E.Src == V && !Visited[static_cast<size_t>(E.Dst)]) {
          Phi[static_cast<size_t>(E.Dst)] = Phi[static_cast<size_t>(V)] + Val;
          Visit(E.Dst);
        } else if (E.Dst == V && !Visited[static_cast<size_t>(E.Src)]) {
          Phi[static_cast<size_t>(E.Src)] = Phi[static_cast<size_t>(V)] - Val;
          Visit(E.Src);
        }
      }
    }
  };
  Drain();
  // Components cut off from ENTRY/EXIT by cold edges still need solved
  // potentials for their own tree edges; they lie on no counted path,
  // so any per-component base potential works.
  for (size_t V = 0; V < NumNodes; ++V) {
    if (Visited[V])
      continue;
    Visit(static_cast<int>(V));
    Drain();
  }

  // Inc(e) = Val(e) + phi(src) - phi(dst); zero on tree edges by
  // construction.
  for (DagEdge &E : Dag.edges()) {
    if (E.Cold)
      continue;
    E.Inc = static_cast<int64_t>(E.Val) + Phi[static_cast<size_t>(E.Src)] -
            Phi[static_cast<size_t>(E.Dst)];
    assert((!E.OnTree || E.Inc == 0) && "tree edge got a nonzero increment");
  }
}

void ppp::runEventCounting(BLDag &Dag) {
  std::vector<int64_t> W(Dag.numEdges(), 0);
  for (const DagEdge &E : Dag.edges())
    W[static_cast<size_t>(E.Id)] = E.Freq;
  runEventCounting(Dag, W);
}
