//===- pathprof/Lowering.h - Materializing instrumentation -----*- C++ -*-===//
///
/// \file
/// Turns placed DAG-edge ops into profiling pseudo-instructions inside a
/// cloned function:
///
///  - FnEntry ops run once per invocation (at the top of the entry
///    block, or in a dedicated entry stub when the entry block has
///    predecessors).
///  - Real-edge ops go at the source (single successor), the target
///    (single predecessor), or a split block on the edge.
///  - FnExit ops go immediately before the Ret.
///  - Dummy-edge ops map back onto the broken back edge: the LoopExit
///    ops (ending the old path) run before the LoopEntry ops (starting
///    the new one), Fig. 1(g).
///
//===----------------------------------------------------------------------===//

#ifndef PPP_PATHPROF_LOWERING_H
#define PPP_PATHPROF_LOWERING_H

#include "analysis/BLDag.h"
#include "pathprof/Placement.h"

#include <map>
#include <vector>

namespace ppp {

/// One profiling pseudo-instruction.
struct ProfOp {
  Opcode Op = Opcode::ProfSet;
  int64_t Imm = 0;
};

/// Instrumentation sites of one function, in CFG terms.
struct SiteOps {
  std::vector<ProfOp> EntryOps;                  ///< Once per invocation.
  std::map<int, std::vector<ProfOp>> EdgeOps;    ///< Per CFG edge id.
  std::map<BlockId, std::vector<ProfOp>> RetOps; ///< Before a block's Ret.

  uint64_t numOps() const;
};

/// Maps placed DAG ops to CFG sites.
///
/// With \p Chained (k-iteration profiling, k > 1), counts lower to the
/// chain opcodes keyed by the dummy edge they terminate on: LoopExit
/// counts become ProfChainIdx/ProfChainConst (fold-or-flush) and FnExit
/// counts become ProfChainRetIdx/ProfChainRetConst (always flush).
/// Placement must have pinned exit counts so every count still sits on
/// such a dummy edge. Checked counts never chain (plans demote first).
SiteOps finalizeSites(const BLDag &Dag, const PlacementResult &Placement,
                      bool Chained = false);

/// Rewrites \p F (a function inside \p M being instrumented) in place,
/// inserting the ops of \p Sites. \p OrigCfg must describe F's CFG
/// before any rewriting. Returns the number of instructions added.
uint64_t lowerInstrumentation(Function &F, const CfgView &OrigCfg,
                              const SiteOps &Sites);

} // namespace ppp

#endif // PPP_PATHPROF_LOWERING_H
