//===- pathprof/ColdEdges.cpp - Cold edge criteria --------------------------===//

#include "pathprof/ColdEdges.h"

#include "analysis/LoopInfo.h"

#include <cmath>

using namespace ppp;

std::set<int> ppp::computeColdEdges(const CfgView &Cfg,
                                    const FunctionEdgeProfile &FP,
                                    const ColdEdgeCriteria &Criteria,
                                    int64_t TotalProgramUnitFlow) {
  std::set<int> Cold;
  if (!Criteria.UseLocal && !Criteria.UseGlobal)
    return Cold;

  double GlobalCut = Criteria.GlobalFraction * Criteria.GlobalMultiplier *
                     static_cast<double>(TotalProgramUnitFlow);

  for (const CfgEdge &E : Cfg.edges()) {
    double Freq = static_cast<double>(FP.EdgeFreq[static_cast<size_t>(E.Id)]);
    if (Criteria.UseLocal) {
      double SrcFreq = static_cast<double>(FP.blockFreq(Cfg, E.Src));
      if (Freq < Criteria.LocalFraction * SrcFreq || SrcFreq == 0) {
        Cold.insert(E.Id);
        continue;
      }
    }
    if (Criteria.UseGlobal && Freq < GlobalCut)
      Cold.insert(E.Id);
  }
  return Cold;
}

int64_t ppp::totalProgramUnitFlow(const Module &M, const EdgeProfile &EP) {
  int64_t Total = 0;
  for (unsigned F = 0; F < M.numFunctions(); ++F) {
    const FunctionEdgeProfile &FP = EP.func(static_cast<FuncId>(F));
    Total += FP.Invocations;
    CfgView Cfg(M.function(static_cast<FuncId>(F)));
    LoopInfo LI = LoopInfo::compute(Cfg);
    for (int BackId : LI.backEdges())
      Total += FP.EdgeFreq[static_cast<size_t>(BackId)];
  }
  return Total;
}
