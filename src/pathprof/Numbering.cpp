//===- pathprof/Numbering.cpp - Path numbering -----------------------------===//

#include "pathprof/Numbering.h"

#include "support/CheckedMath.h"

#include <algorithm>
#include <map>

using namespace ppp;

uint64_t NumberingResult::pathsThrough(const DagEdge &E, bool &Ovf) const {
  return saturatingMul(PathsTo[static_cast<size_t>(E.Src)],
                       PathsFrom[static_cast<size_t>(E.Dst)], Ovf);
}

NumberingResult ppp::assignPathNumbers(BLDag &Dag, NumberingOrder Order) {
  NumberingResult R;
  size_t N = static_cast<size_t>(Dag.numNodes());
  R.PathsFrom.assign(N, 0);
  R.PathsTo.assign(N, 0);

  const std::vector<int> &Topo = Dag.topoOrder();

  // Figure 2 / Figure 6: reverse topological order.
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    int V = *It;
    if (V == Dag.exitNode()) {
      R.PathsFrom[static_cast<size_t>(V)] = 1;
      continue;
    }
    // Collect non-cold out-edges in the requested order.
    std::vector<int> Out;
    for (int EId : Dag.outEdges(V))
      if (!Dag.edge(EId).Cold)
        Out.push_back(EId);
    if (Order == NumberingOrder::BallLarus) {
      std::stable_sort(Out.begin(), Out.end(), [&](int A, int B) {
        return R.PathsFrom[static_cast<size_t>(Dag.edge(A).Dst)] <
               R.PathsFrom[static_cast<size_t>(Dag.edge(B).Dst)];
      });
    } else {
      std::stable_sort(Out.begin(), Out.end(), [&](int A, int B) {
        return Dag.edge(A).Freq > Dag.edge(B).Freq;
      });
    }
    uint64_t Sum = 0;
    for (int EId : Out) {
      DagEdge &E = Dag.edge(EId);
      E.Val = Sum;
      Sum = saturatingAdd(Sum, R.PathsFrom[static_cast<size_t>(E.Dst)],
                          R.Overflow);
    }
    R.PathsFrom[static_cast<size_t>(V)] = Sum;
  }
  R.NumPaths = R.PathsFrom[static_cast<size_t>(Dag.entryNode())];

  // Forward pass for PathsTo (used by obvious-path detection).
  for (int V : Topo) {
    if (V == Dag.entryNode()) {
      R.PathsTo[static_cast<size_t>(V)] = 1;
      continue;
    }
    uint64_t Sum = 0;
    for (int EId : Dag.inEdges(V)) {
      const DagEdge &E = Dag.edge(EId);
      if (E.Cold)
        continue;
      Sum = saturatingAdd(Sum, R.PathsTo[static_cast<size_t>(E.Src)],
                          R.Overflow);
    }
    R.PathsTo[static_cast<size_t>(V)] = Sum;
  }
  return R;
}

uint64_t ppp::countKIterPaths(const BLDag &Dag, uint64_t K, bool &Overflow) {
  size_t N = static_cast<size_t>(Dag.numNodes());
  const std::vector<int> &Topo = Dag.topoOrder();

  // Back edge -> the header its non-cold LoopEntry dummy re-enters at.
  // A chain crossing that back edge continues with a segment counted
  // from this node; a back edge whose LoopEntry is cold has no valid
  // continuations (the next segment starts poisoned).
  std::map<int, int> HeaderOf;
  for (const DagEdge &E : Dag.edges())
    if (E.Kind == DagEdgeKind::LoopEntry && !E.Cold)
      HeaderOf[E.CfgEdgeId] = E.Dst;

  // Cur[v] after round r = number of distinct valid chain tails from
  // node v when the chain may still cross r more back edges. Round 0
  // (every crossing flushes) is exactly the acyclic path count.
  std::vector<uint64_t> Prev(N, 0), Cur(N, 0);
  for (uint64_t Round = 0; Round < (K == 0 ? 1 : K); ++Round) {
    for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
      int V = *It;
      if (V == Dag.exitNode()) {
        Cur[static_cast<size_t>(V)] = 0;
        continue;
      }
      uint64_t Sum = 0;
      for (int EId : Dag.outEdges(V)) {
        const DagEdge &E = Dag.edge(EId);
        if (E.Cold)
          continue;
        switch (E.Kind) {
        case DagEdgeKind::FnExit:
          // A Ret always flushes, in every round.
          Sum = saturatingAdd(Sum, 1, Overflow);
          break;
        case DagEdgeKind::LoopExit: {
          uint64_t Tail = 1; // Depth exhausted: the crossing flushes.
          if (Round > 0) {
            auto HIt = HeaderOf.find(E.CfgEdgeId);
            Tail = HIt == HeaderOf.end()
                       ? 0
                       : Prev[static_cast<size_t>(HIt->second)];
          }
          Sum = saturatingAdd(Sum, Tail, Overflow);
          break;
        }
        default:
          Sum = saturatingAdd(Sum, Cur[static_cast<size_t>(E.Dst)], Overflow);
          break;
        }
      }
      Cur[static_cast<size_t>(V)] = Sum;
    }
    std::swap(Prev, Cur);
  }
  return Prev[static_cast<size_t>(Dag.entryNode())];
}
