//===- examples/flow_estimation.cpp - The paper's Figure 8, worked ------------===//
///
/// Reconstructs the worked example of Sections 5.2 and 6.2: the routine
/// of Figure 8, its definite and potential flow, and the edge profile's
/// 50% coverage. Run it next to the paper -- every number matches.
///
//===----------------------------------------------------------------------===//

#include "analysis/BLDag.h"
#include "flow/FlowAnalysis.h"
#include "flow/Reconstruct.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <cstdio>

using namespace ppp;

int main() {
  // Figure 8: A -> {B:50, C:30}; B,C -> D; D -> {E:60, F:20}; E,F -> G.
  Module M;
  IRBuilder B(M);
  B.beginFunction("fig8", 1);
  BlockId A = 0;
  BlockId Bb = B.newBlock(), C = B.newBlock(), D = B.newBlock();
  BlockId E = B.newBlock(), F = B.newBlock(), G = B.newBlock();
  B.emitCondBr(0, Bb, C);
  B.setInsertPoint(Bb);
  B.emitBr(D);
  B.setInsertPoint(C);
  B.emitBr(D);
  B.setInsertPoint(D);
  B.emitCondBr(0, E, F);
  B.setInsertPoint(E);
  B.emitBr(G);
  B.setInsertPoint(F);
  B.emitBr(G);
  B.setInsertPoint(G);
  B.emitRet(0);
  B.endFunction();
  B.beginFunction("main", 0);
  B.emitRet(B.emitConst(0));
  B.endFunction();
  M.MainId = 1;
  if (!verifyModule(M).empty())
    return 1;

  // The edge profile straight out of the figure.
  CfgView Cfg(M.function(0));
  LoopInfo LI = LoopInfo::compute(Cfg);
  std::vector<int64_t> Freq(Cfg.numEdges(), 0);
  Freq[(size_t)Cfg.edgeIdFor(A, 0)] = 50;  // A->B
  Freq[(size_t)Cfg.edgeIdFor(A, 1)] = 30;  // A->C
  Freq[(size_t)Cfg.edgeIdFor(Bb, 0)] = 50; // B->D
  Freq[(size_t)Cfg.edgeIdFor(C, 0)] = 30;  // C->D
  Freq[(size_t)Cfg.edgeIdFor(D, 0)] = 60;  // D->E
  Freq[(size_t)Cfg.edgeIdFor(D, 1)] = 20;  // D->F
  Freq[(size_t)Cfg.edgeIdFor(E, 0)] = 60;  // E->G
  Freq[(size_t)Cfg.edgeIdFor(F, 0)] = 20;  // F->G

  BLDag Dag = BLDag::build(Cfg, LI);
  Dag.setFrequencies(Freq, /*Invocations=*/80);

  int64_t ActualFlow = 0;
  for (const DagEdge &DE : Dag.edges())
    if (DE.IsBranch)
      ActualFlow += DE.Freq;
  printf("Figure 8 worked example (branch-flow metric)\n");
  printf("  total invocations F          = %lld\n",
         (long long)Dag.totalFlow());
  printf("  actual program flow F(P)     = %lld  (paper: 160)\n",
         (long long)ActualFlow);

  FlowResult DF = computeDefiniteFlow(Dag);
  uint64_t Definite = DF.totalFlowAtEntry(Dag, FlowMetric::Branch);
  printf("  definite flow DF(P)          = %llu  (paper: 80)\n",
         (unsigned long long)Definite);
  printf("  edge-profile coverage        = %.0f%%  (paper: 50%%)\n\n",
         100.0 * (double)Definite / (double)ActualFlow);

  const char *BlockNames = "ABCDEFG";
  auto PrintPaths = [&](const char *Title,
                        const std::vector<ReconstructedPath> &Paths) {
    printf("  %s\n", Title);
    for (const ReconstructedPath &P : Paths) {
      printf("    freq %3lld  flow %4llu  path ", (long long)P.Freq,
             (unsigned long long)P.flow(FlowMetric::Branch));
      for (BlockId Blk : P.Key.blocks(Cfg))
        printf("%c", BlockNames[Blk]);
      printf("\n");
    }
  };

  PrintPaths("definite-flow paths (paper: ABDEG=60, ACDEG=20):",
             reconstructPaths(Dag, DF, 0, FlowMetric::Branch));

  FlowResult PF = computePotentialFlow(Dag);
  PrintPaths("potential-flow paths (upper bounds; used to pick "
             "estimated hot paths):",
             reconstructPaths(Dag, PF, 0, FlowMetric::Branch));

  printf("\nReading: the edge profile *guarantees* only half the flow "
         "(definite), while\nthe other half could belong to several "
         "paths (potential) -- exactly why the\npaper instruments "
         "routines whose edge coverage is poor.\n");
  return 0;
}
