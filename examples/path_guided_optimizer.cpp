//===- examples/path_guided_optimizer.cpp - Using path profiles ---------------===//
///
/// The payoff the paper is building toward: a dynamic optimizer that
/// consumes a PPP path profile. This example forms a superblock-style
/// trace from the hottest path -- tail-duplicating every side-entered
/// block on the path into its on-path predecessor -- and measures the
/// dynamic cost saved (straight-line code, no jumps between the merged
/// blocks).
///
/// An edge profile alone cannot do this safely: it does not know which
/// *path* is hot, only which edges are (Sec. 1 and 2 of the paper).
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "opt/TraceFormation.h"
#include "ir/Verifier.h"
#include "metrics/Metrics.h"
#include "pathprof/EstimatedProfile.h"
#include "profile/Collectors.h"
#include "workload/Generator.h"

#include <algorithm>
#include <cstdio>

using namespace ppp;



int main() {
  WorkloadParams P;
  P.Seed = 0xfeed;
  P.Name = "trace-demo";
  P.NumFunctions = 6;
  P.IfPct = 30;
  P.SkewedIfPct = 85;
  P.SkewMin = 93;
  P.SkewMax = 99;
  P.MainLoopTrips = 600;
  Module M = generateWorkload(P);

  // Profile with PPP.
  EdgeProfiler EO(M);
  Interpreter I0(M);
  I0.addObserver(&EO);
  RunResult Base = I0.run();
  EdgeProfile EP = EO.takeProfile();
  InstrumentationResult IR = instrumentModule(M, EP, ProfilerOptions::ppp());
  ProfileRuntime RT = IR.makeRuntime();
  Interpreter I1(IR.Instrumented);
  I1.setProfileRuntime(&RT);
  I1.run();
  ProfilerRunData Data = buildEstimatedProfile(M, EP, IR, RT);

  // Pick the hottest measured path of each function and form traces
  // (the library pass; see src/opt/TraceFormation.h).
  Module Optimized = M;
  TraceStats Stats =
      formTracesFromPathProfile(Optimized, Data.Estimated);
  unsigned Traces = Stats.Traces, Duplicated = Stats.BlocksDuplicated;
  if (std::string E = verifyModule(Optimized); !E.empty()) {
    fprintf(stderr, "trace formation broke the module: %s\n", E.c_str());
    return 1;
  }

  RunResult Opt = Interpreter(Optimized).run();
  bool Same = Opt.ReturnValue == Base.ReturnValue &&
              Opt.MemChecksum == Base.MemChecksum;
  printf("formed %u traces (%u blocks tail-duplicated)\n", Traces,
         Duplicated);
  printf("semantics preserved: %s\n", Same ? "yes" : "NO (bug!)");
  printf("dynamic cost: %llu -> %llu  (%.2f%% faster)\n",
         (unsigned long long)Base.Cost, (unsigned long long)Opt.Cost,
         100.0 * ((double)Base.Cost - (double)Opt.Cost) /
             (double)Base.Cost);
  printf("\nThis is the \"staged dynamic optimization\" loop of the "
         "paper's summary:\nprofile continuously at ~5%% overhead, then "
         "spend the profile on path-based\noptimizations like trace "
         "formation.\n");
  return Same ? 0 : 1;
}
