//===- examples/quickstart.cpp - Five-minute tour of the API ------------------===//
///
/// Builds a small program with IRBuilder, collects an edge profile,
/// instruments it with PPP, runs it, and prints the hot paths.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pathprof/EstimatedProfile.h"
#include "pathprof/Profilers.h"
#include "profile/Collectors.h"

#include <cstdio>

using namespace ppp;

/// A function with three nested decisions inside a hot loop, biased so
/// two of the eight paths dominate.
static Module buildDemoProgram() {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  RegId I = B.emitConst(0);
  RegId N = B.emitConst(10000);
  RegId State = B.emitConst(12345);

  BlockId Loop = B.newBlock();
  BlockId Exit = B.newBlock();
  B.emitBr(Loop);
  B.setInsertPoint(Loop);

  // Evolve a pseudo-random state; branch on its bits with bias.
  B.emitMulImm(State, 6364136223846793005LL, State);
  B.emitAddImm(State, 1442695040888963407LL, State);
  RegId C33 = B.emitConst(33);
  RegId Hi = B.emitBinary(Opcode::Shr, State, C33);
  RegId C100 = B.emitConst(100);
  RegId Mod = B.emitBinary(Opcode::RemU, Hi, C100);

  // First decision: 70% hot (warm enough that an edge profile cannot
  // pin down the paths).
  RegId Cut70 = B.emitConst(70);
  RegId Hot1 = B.emitBinary(Opcode::CmpLt, Mod, Cut70);
  BlockId T1 = B.newBlock(), F1 = B.newBlock(), J1 = B.newBlock();
  B.emitCondBr(Hot1, T1, F1);
  B.setInsertPoint(T1);
  B.emitAddImm(State, 1, State);
  B.emitBr(J1);
  B.setInsertPoint(F1);
  B.emitMulImm(State, 3, State);
  B.emitBr(J1);
  B.setInsertPoint(J1);

  // Second decision: 50/50.
  RegId Two = B.emitConst(2);
  RegId Bit = B.emitBinary(Opcode::RemU, Hi, Two);
  BlockId T2 = B.newBlock(), F2 = B.newBlock(), J2 = B.newBlock();
  B.emitCondBr(Bit, T2, F2);
  B.setInsertPoint(T2);
  B.emitAddImm(State, 7, State);
  B.emitBr(J2);
  B.setInsertPoint(F2);
  B.emitAddImm(State, 13, State);
  B.emitBr(J2);
  B.setInsertPoint(J2);

  // Third decision: another independent coin flip.
  RegId C7 = B.emitConst(7);
  RegId Hi2 = B.emitBinary(Opcode::Shr, State, C7);
  RegId Bit2 = B.emitBinary(Opcode::RemU, Hi2, Two);
  BlockId T3 = B.newBlock(), F3 = B.newBlock(), J3 = B.newBlock();
  B.emitCondBr(Bit2, T3, F3);
  B.setInsertPoint(T3);
  B.emitAddImm(State, 3, State);
  B.emitBr(J3);
  B.setInsertPoint(F3);
  B.emitAddImm(State, 5, State);
  B.emitBr(J3);
  B.setInsertPoint(J3);

  B.emitAddImm(I, 1, I);
  RegId More = B.emitBinary(Opcode::CmpLt, I, N);
  B.emitCondBr(More, Loop, Exit);
  B.setInsertPoint(Exit);
  B.emitRet(State);
  B.endFunction();
  return M;
}

int main() {
  Module M = buildDemoProgram();
  if (std::string E = verifyModule(M); !E.empty()) {
    fprintf(stderr, "verification failed: %s\n", E.c_str());
    return 1;
  }
  printf("== The program ==\n%s\n", printFunction(M.function(0)).c_str());

  // 1. Collect the (cheap) edge profile the instrumenter needs.
  EdgeProfiler EdgeObs(M);
  Interpreter Clean(M);
  Clean.addObserver(&EdgeObs);
  RunResult Base = Clean.run();
  EdgeProfile EP = EdgeObs.takeProfile();

  // 2. Instrument a clone with PPP.
  InstrumentationResult IR = instrumentModule(M, EP, ProfilerOptions::ppp());
  const FunctionPlan &Plan = IR.Plans[0];
  printf("== PPP instrumentation plan ==\n");
  if (!Plan.Instrumented) {
    printf("routine skipped (reason %d): the edge profile already covers "
           "%.0f%% of its flow\n\n",
           (int)Plan.Skip, 100.0 * Plan.EdgeCoverage);
  } else {
    printf("edge coverage %.0f%% (< 75%%, so PPP instruments); possible "
           "paths N = %llu,\ntable = %s, cold edges = %zu, static prof "
           "ops = %llu\n\n",
           100.0 * Plan.EdgeCoverage, (unsigned long long)Plan.NumPaths,
           Plan.TableKind == PathTable::Kind::Hash ? "hash" : "array",
           Plan.ColdEdges.size(), (unsigned long long)Plan.StaticOps);
  }

  // 3. Run the instrumented program against fresh counters.
  ProfileRuntime RT = IR.makeRuntime();
  Interpreter Instr(IR.Instrumented);
  Instr.setProfileRuntime(&RT);
  RunResult WithProf = Instr.run();
  printf("overhead: %.2f%% (base cost %llu, instrumented %llu)\n\n",
         100.0 * (double)(WithProf.Cost - Base.Cost) / (double)Base.Cost,
         (unsigned long long)Base.Cost, (unsigned long long)WithProf.Cost);

  // 4. Decode the counters into concrete hot paths.
  ProfilerRunData Data = buildEstimatedProfile(M, EP, IR, RT);
  std::vector<const PathRecord *> Paths;
  for (const PathRecord &R : Data.Estimated.Funcs[0].Paths)
    Paths.push_back(&R);
  std::sort(Paths.begin(), Paths.end(),
            [](const PathRecord *A, const PathRecord *B) {
              return A->Freq > B->Freq;
            });
  printf("== Hot paths (top 5 of %zu) ==\n", Paths.size());
  CfgView Cfg(M.function(0));
  for (size_t K = 0; K < Paths.size() && K < 5; ++K) {
    const PathRecord *R = Paths[K];
    printf("freq %8llu  branches %u  blocks:",
           (unsigned long long)R->Freq, R->Branches);
    for (BlockId Blk : R->Key.blocks(Cfg))
      printf(" b%d", Blk);
    printf("%s\n", R->Key.TermCfgEdgeId >= 0 ? " (ends at back edge)"
                                             : " (returns)");
  }
  return 0;
}
