//===- examples/profiler_comparison.cpp - PP vs TPP vs PPP, one program -------===//
///
/// Generates one synthetic benchmark, applies the paper's methodology
/// (inline + unroll, then profile), and prints a side-by-side
/// comparison of the three profilers plus plain edge profiling.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "metrics/Metrics.h"
#include "opt/Inliner.h"
#include "opt/Unroller.h"
#include "pathprof/EstimatedProfile.h"
#include "profile/Collectors.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace ppp;

namespace {

struct CleanRun {
  EdgeProfile EP;
  PathProfile Oracle;
  uint64_t Cost = 0;

  CleanRun() : Oracle(0) {}
};

CleanRun profileOnce(const Module &M) {
  CleanRun Out;
  EdgeProfiler EO(M);
  PathTracer PT(M);
  Interpreter I(M);
  I.addObserver(&EO);
  I.addObserver(&PT);
  RunResult R = I.run();
  Out.EP = EO.takeProfile();
  Out.Oracle = PT.takeProfile();
  Out.Cost = R.Cost;
  return Out;
}

} // namespace

int main() {
  // A branchy, moderately skewed workload (parser-ish).
  WorkloadParams P;
  P.Seed = 0xbeef;
  P.Name = "demo";
  P.NumFunctions = 10;
  P.IfPct = 38;
  P.SkewedIfPct = 55;
  P.MainLoopTrips = 400;
  Module M = generateWorkload(P);

  // Paper methodology (Sec. 7.3): inline and unroll first.
  CleanRun Pre = profileOnce(M);
  runInliner(M, Pre.EP);
  CleanRun Mid = profileOnce(M);
  runUnroller(M, Mid.EP);
  if (!verifyModule(M).empty())
    return 1;
  CleanRun Base = profileOnce(M);

  printf("benchmark: %s  (%llu dynamic paths, %llu distinct)\n\n",
         P.Name.c_str(), (unsigned long long)Base.Oracle.totalFreq(),
         (unsigned long long)Base.Oracle.distinctPaths());
  printf("%-8s%12s%12s%12s%12s%12s\n", "method", "accuracy%", "coverage%",
         "overhead%", "instr'd%", "hashed%");

  // Edge profiling row.
  {
    uint64_t Cut = (uint64_t)(DefaultHotFraction *
                              (double)Base.Oracle.totalFlow(
                                  FlowMetric::Branch) / 2.0);
    PathProfile Est = estimateFromEdgeProfile(
        M, Base.EP, FlowKind::Potential, Cut, FlowMetric::Branch);
    AccuracyResult Acc =
        computeAccuracy(Base.Oracle, Est, FlowMetric::Branch);
    double Cov =
        computeEdgeCoverage(M, Base.EP, Base.Oracle, FlowMetric::Branch);
    printf("%-8s%12.1f%12.1f%12.2f%12.1f%12.1f\n", "edge",
           100 * Acc.Accuracy, 100 * Cov, 0.0, 0.0, 0.0);
  }

  for (const ProfilerOptions &Opts :
       {ProfilerOptions::pp(), ProfilerOptions::tpp(),
        ProfilerOptions::ppp()}) {
    InstrumentationResult IR = instrumentModule(M, Base.EP, Opts);
    ProfileRuntime RT = IR.makeRuntime();
    Interpreter I(IR.Instrumented);
    I.setProfileRuntime(&RT);
    RunResult R = I.run();
    ProfilerRunData Data = buildEstimatedProfile(M, Base.EP, IR, RT);
    AccuracyResult Acc =
        computeAccuracy(Base.Oracle, Data.Estimated, FlowMetric::Branch);
    CoverageResult Cov = computeProfilerCoverage(IR, Data, Base.Oracle,
                                                 FlowMetric::Branch);
    InstrumentedFraction Frac =
        computeInstrumentedFraction(IR, Base.Oracle);
    printf("%-8s%12.1f%12.1f%12.2f%12.1f%12.1f\n", Opts.Name.c_str(),
           100 * Acc.Accuracy, 100 * Cov.Coverage,
           overheadPercent(Base.Cost, R.Cost), 100 * Frac.Total,
           100 * Frac.Hashed);
  }

  printf("\nThe paper's story in one table: TPP and PPP keep nearly "
         "all of PP's accuracy\nwhile instrumenting about half the "
         "dynamic paths; PPP additionally kills the\nhash tables and "
         "pushes overhead down toward edge-profiling territory.\n");
  return 0;
}
